#include "isa/encode.hh"

#include <cstring>

#include "support/logging.hh"

namespace manticore::isa {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'N', 'T', 'I', 'C', 'O', 'R'};
constexpr uint32_t kVersion = 1;

class Writer
{
  public:
    explicit Writer(std::vector<uint8_t> &out) : _out(out) {}

    void
    bytes(const void *data, size_t n)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        _out.insert(_out.end(), p, p + n);
    }

    void u8(uint8_t v) { bytes(&v, 1); }
    void u16(uint16_t v) { bytes(&v, 2); }
    void u32(uint32_t v) { bytes(&v, 4); }
    void u64(uint64_t v) { bytes(&v, 8); }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

  private:
    std::vector<uint8_t> &_out;
};

class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &in) : _in(in) {}

    void
    bytes(void *data, size_t n)
    {
        MANTICORE_ASSERT(_pos + n <= _in.size(), "binary image truncated");
        std::memcpy(data, _in.data() + _pos, n);
        _pos += n;
    }

    uint8_t u8() { uint8_t v; bytes(&v, 1); return v; }
    uint16_t u16() { uint16_t v; bytes(&v, 2); return v; }
    uint32_t u32() { uint32_t v; bytes(&v, 4); return v; }
    uint64_t u64() { uint64_t v; bytes(&v, 8); return v; }

    std::string
    str()
    {
        uint32_t n = u32();
        std::string s(n, '\0');
        bytes(s.data(), n);
        return s;
    }

  private:
    const std::vector<uint8_t> &_in;
    size_t _pos = 0;
};

} // namespace

void
encodeInstruction(const Instruction &inst, uint8_t out[16])
{
    // opcode(1) rd(2) rs1(2) rs2(2) rs3(2) rs4(2) imm(2) target(3)
    auto reg16 = [](Reg r) -> uint16_t {
        return r == kNoReg ? 0xffff : static_cast<uint16_t>(r);
    };
    out[0] = static_cast<uint8_t>(inst.opcode);
    uint16_t fields[6] = {reg16(inst.rd), reg16(inst.rs1),
                          reg16(inst.rs2), reg16(inst.rs3),
                          reg16(inst.rs4), inst.imm};
    std::memcpy(out + 1, fields, 12);
    out[13] = static_cast<uint8_t>(inst.target);
    out[14] = static_cast<uint8_t>(inst.target >> 8);
    out[15] = static_cast<uint8_t>(inst.target >> 16);
}

Instruction
decodeInstruction(const uint8_t in[16])
{
    Instruction inst;
    MANTICORE_ASSERT(in[0] < static_cast<uint8_t>(Opcode::NumOpcodes),
                     "bad opcode byte ", static_cast<int>(in[0]));
    inst.opcode = static_cast<Opcode>(in[0]);
    uint16_t fields[6];
    std::memcpy(fields, in + 1, 12);
    auto reg = [](uint16_t v) -> Reg {
        return v == 0xffff ? kNoReg : v;
    };
    inst.rd = reg(fields[0]);
    inst.rs1 = reg(fields[1]);
    inst.rs2 = reg(fields[2]);
    inst.rs3 = reg(fields[3]);
    inst.rs4 = reg(fields[4]);
    inst.imm = fields[5];
    inst.target = in[13] | (in[14] << 8) | (in[15] << 16);
    return inst;
}

std::vector<uint8_t>
encodeProgram(const Program &program)
{
    std::vector<uint8_t> out;
    Writer w(out);
    w.bytes(kMagic, 8);
    w.u32(kVersion);

    w.u32(static_cast<uint32_t>(program.exceptions.size()));
    for (size_t i = 0; i < program.exceptions.size(); ++i) {
        const ExceptionInfo &e =
            program.exceptions.info(static_cast<uint16_t>(i));
        w.u8(static_cast<uint8_t>(e.kind));
        w.str(e.format);
        w.u32(static_cast<uint32_t>(e.argChunkAddrs.size()));
        for (size_t a = 0; a < e.argChunkAddrs.size(); ++a) {
            w.u32(e.argWidths[a]);
            w.u32(static_cast<uint32_t>(e.argChunkAddrs[a].size()));
            for (uint64_t addr : e.argChunkAddrs[a])
                w.u64(addr);
        }
    }

    w.u64(program.globalWordsReserved);
    w.u64(static_cast<uint64_t>(program.globalInit.size()));
    for (const auto &[addr, value] : program.globalInit) {
        w.u64(addr);
        w.u16(value);
    }
    w.u32(program.vcpl);

    w.u32(static_cast<uint32_t>(program.placement.size()));
    for (auto [x, y] : program.placement) {
        w.u32(x);
        w.u32(y);
    }

    w.u32(static_cast<uint32_t>(program.processes.size()));
    for (const Process &p : program.processes) {
        w.u32(p.id);
        w.u8(p.privileged ? 1 : 0);
        w.u32(p.epilogueLength);

        w.u32(static_cast<uint32_t>(p.init.size()));
        for (const auto &[reg, v] : p.init) {
            w.u32(reg);
            w.u16(v);
        }

        w.u32(static_cast<uint32_t>(p.functions.size()));
        for (const CustomFunction &f : p.functions)
            for (uint16_t lane : f.lut)
                w.u16(lane);

        w.u32(static_cast<uint32_t>(p.scratchInit.size()));
        for (uint16_t word : p.scratchInit)
            w.u16(word);

        w.u32(static_cast<uint32_t>(p.body.size()));
        for (const Instruction &inst : p.body) {
            uint8_t rec[16];
            encodeInstruction(inst, rec);
            w.bytes(rec, 16);
        }
    }
    return out;
}

Program
decodeProgram(const std::vector<uint8_t> &image)
{
    Reader r(image);
    char magic[8];
    r.bytes(magic, 8);
    MANTICORE_ASSERT(std::memcmp(magic, kMagic, 8) == 0, "bad magic");
    uint32_t version = r.u32();
    MANTICORE_ASSERT(version == kVersion, "unsupported version ", version);

    Program program;
    uint32_t num_exc = r.u32();
    for (uint32_t i = 0; i < num_exc; ++i) {
        ExceptionInfo e;
        e.kind = static_cast<ExceptionKind>(r.u8());
        e.format = r.str();
        uint32_t num_args = r.u32();
        for (uint32_t a = 0; a < num_args; ++a) {
            e.argWidths.push_back(r.u32());
            uint32_t chunks = r.u32();
            std::vector<uint64_t> addrs;
            for (uint32_t c = 0; c < chunks; ++c)
                addrs.push_back(r.u64());
            e.argChunkAddrs.push_back(std::move(addrs));
        }
        program.exceptions.add(std::move(e));
    }

    program.globalWordsReserved = r.u64();
    uint64_t num_ginit = r.u64();
    for (uint64_t i = 0; i < num_ginit; ++i) {
        uint64_t addr = r.u64();
        uint16_t value = r.u16();
        program.globalInit.emplace_back(addr, value);
    }
    program.vcpl = r.u32();

    uint32_t num_place = r.u32();
    for (uint32_t i = 0; i < num_place; ++i) {
        uint32_t x = r.u32();
        uint32_t y = r.u32();
        program.placement.emplace_back(x, y);
    }

    uint32_t num_procs = r.u32();
    for (uint32_t i = 0; i < num_procs; ++i) {
        Process p;
        p.id = r.u32();
        p.privileged = r.u8() != 0;
        p.epilogueLength = r.u32();

        uint32_t num_init = r.u32();
        for (uint32_t k = 0; k < num_init; ++k) {
            Reg reg = r.u32();
            p.init[reg] = r.u16();
        }

        uint32_t num_funcs = r.u32();
        for (uint32_t k = 0; k < num_funcs; ++k) {
            CustomFunction f;
            for (auto &lane : f.lut)
                lane = r.u16();
            p.functions.push_back(f);
        }

        uint32_t num_scratch = r.u32();
        p.scratchInit.resize(num_scratch);
        for (auto &word : p.scratchInit)
            word = r.u16();

        uint32_t num_insts = r.u32();
        for (uint32_t k = 0; k < num_insts; ++k) {
            uint8_t rec[16];
            r.bytes(rec, 16);
            p.body.push_back(decodeInstruction(rec));
        }
        program.processes.push_back(std::move(p));
    }
    return program;
}

} // namespace manticore::isa
