/**
 * @file
 * Machine configuration shared by the compiler, the ISA interpreter,
 * and the cycle-level machine simulator.  Defaults mirror the paper's
 * FPGA prototype (§5): 16-bit datapath, 2048x17 register file, 4096-
 * entry instruction memory, 16384x16 scratchpad, 32 CFU slots,
 * unidirectional 2-D torus NoC, privileged core with a 128 KiB
 * direct-mapped write-back cache in front of DRAM.
 */

#ifndef MANTICORE_ISA_CONFIG_HH
#define MANTICORE_ISA_CONFIG_HH

namespace manticore::isa {

struct MachineConfig
{
    /// Grid dimensions (paper evaluates 15x15 = 225 cores).
    unsigned gridX = 15;
    unsigned gridY = 15;

    /// Instruction memory entries per core (also bounds the receive
    /// window: incoming messages are stored as SET instructions).
    unsigned imemSize = 4096;

    /// Machine registers per core (17-bit entries: 16 data + carry).
    unsigned regFileSize = 2048;

    /// Scratchpad words (16-bit) per core.
    unsigned scratchSize = 16384;

    /// Custom-function slots per core.
    unsigned custSlots = 32;

    /// Slots between an instruction and the first slot that can read
    /// its result (14-stage pipeline, §5.1).
    unsigned pipelineLatency = 11;

    /// Cycles from SEND issue until the message enters the NoC.
    unsigned sendInjectLatency = 2;

    /// Cycles per NoC hop (switch traversal).
    unsigned hopLatency = 1;

    /// Privileged-core data cache (global memory path, §5.3).
    unsigned cacheBytes = 128 * 1024;
    unsigned cacheLineBytes = 64;
    /// Global stall cycles charged on a cache hit / miss (every access
    /// preemptively stalls all cores and the NoC, §5.3).
    unsigned cacheHitStall = 12;
    unsigned cacheMissStall = 120;

    /// Compute-clock frequency of the modelled implementation in kHz
    /// (475 MHz for the guided 15x15 floorplan, Table 1).
    double clockKhz = 475'000.0;

    unsigned numCores() const { return gridX * gridY; }
};

} // namespace manticore::isa

#endif // MANTICORE_ISA_CONFIG_HH
