/**
 * @file
 * Binary program encoding: the artifact the compiler emits and the
 * runtime's bootloader streams into the instruction memories (§A.3.1).
 *
 * Layout (all little-endian):
 *   "MANTICOR" magic, u32 version, u32 process count, exception table,
 *   then per process: header (id, flags, counts), boot-constant pairs,
 *   CFU truth tables, scratchpad image, and the instruction stream at
 *   16 bytes per instruction.  The per-process footer carries
 *   EPILOGUE_LENGTH as described in the paper's boot protocol.
 *
 * Note on density: the FPGA prototype packs instructions into 64-bit
 * words; we use a fixed 16-byte record so every field is addressable
 * without bit-twiddling.  Timing is unaffected (one instruction per
 * slot either way); DESIGN.md records the deviation.
 */

#ifndef MANTICORE_ISA_ENCODE_HH
#define MANTICORE_ISA_ENCODE_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace manticore::isa {

/** Serialise a program to its binary image. */
std::vector<uint8_t> encodeProgram(const Program &program);

/** Parse a binary image back into a program; fatal() on corruption. */
Program decodeProgram(const std::vector<uint8_t> &image);

/** Encode one instruction into a 16-byte record. */
void encodeInstruction(const Instruction &inst, uint8_t out[16]);
Instruction decodeInstruction(const uint8_t in[16]);

} // namespace manticore::isa

#endif // MANTICORE_ISA_ENCODE_HH
