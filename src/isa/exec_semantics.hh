/**
 * @file
 * The single source of truth for the ISA's architectural semantics,
 * shared by every execution engine: the reference isa::Interpreter,
 * the flat-tape isa::TapeInterpreter, and the cycle-level
 * machine::Machine.  Each helper implements exactly one contract from
 * §4.2/§5.1 of the paper (17-bit registers, carry/borrow chaining,
 * predication, scratch wraparound, global-address formation), so an
 * engine cannot drift from the others without editing this header —
 * and the three-way differential suite (tests/test_interpreter_tape.cc)
 * would catch it if it tried.
 *
 * Register images are 17-bit values packed in a uint32_t: the low 16
 * bits hold the datapath value, bit 16 the carry/borrow flag written
 * by ADD/SUB(B/C) and consumed by ADDC/SUBB.
 */

#ifndef MANTICORE_ISA_EXEC_SEMANTICS_HH
#define MANTICORE_ISA_EXEC_SEMANTICS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace manticore::isa::exec {

constexpr uint32_t kCarryBit = 1u << 16;

/** 16-bit datapath value of a register image. */
inline uint16_t
value(uint32_t raw)
{
    return static_cast<uint16_t>(raw);
}

/** Carry flag of a register image, as a 0/1 addend. */
inline uint32_t
carryIn(uint32_t raw)
{
    return (raw & kCarryBit) ? 1u : 0u;
}

/** Pack a value and a carry flag into a register image. */
inline uint32_t
packCarry(uint16_t v, bool carry)
{
    return static_cast<uint32_t>(v) | (carry ? kCarryBit : 0u);
}

/** ADD / ADDC: 16-bit add with carry-in and carry-out (§5.1).
 *  a + b + cin <= 0x1ffff, so the carry-out lands exactly on bit 16
 *  of the sum — the sum already is the packed register image. */
inline uint32_t
addCarry(uint16_t a, uint16_t b, uint32_t cin)
{
    return static_cast<uint32_t>(a) + b + cin;
}

/** SUB / SUBB: 16-bit subtract with borrow-in and borrow-out. */
inline uint32_t
subBorrow(uint16_t a, uint16_t b, uint32_t bin)
{
    uint32_t sub = static_cast<uint32_t>(b) + bin;
    return packCarry(static_cast<uint16_t>(a - sub), sub > a);
}

inline uint16_t
mulLow(uint16_t a, uint16_t b)
{
    return static_cast<uint16_t>(static_cast<uint32_t>(a) * b);
}

inline uint16_t
mulHigh(uint16_t a, uint16_t b)
{
    return static_cast<uint16_t>((static_cast<uint32_t>(a) * b) >> 16);
}

/** SLL / SRL: shift amounts >= 16 yield 0. */
inline uint16_t
shiftLeft(uint16_t v, unsigned amt)
{
    return amt >= 16 ? 0 : static_cast<uint16_t>(v << amt);
}

inline uint16_t
shiftRight(uint16_t v, unsigned amt)
{
    return amt >= 16 ? 0 : static_cast<uint16_t>(v >> amt);
}

inline bool
lessSigned(uint16_t a, uint16_t b)
{
    return static_cast<int16_t>(a) < static_cast<int16_t>(b);
}

/** SLICE: the mask for a field of `len` bits (len >= 16 keeps all). */
inline uint16_t
sliceMask(unsigned len)
{
    return len >= 16 ? 0xffff : static_cast<uint16_t>((1u << len) - 1);
}

inline uint16_t
sliceExtract(uint16_t v, unsigned lo, uint16_t mask)
{
    return static_cast<uint16_t>((v >> lo) & mask);
}

/** PRED / MUX selector: only bit 0 of the register is consulted. */
inline bool
predicate(uint32_t raw)
{
    return raw & 1;
}

/** LLD / LST effective address: base + offset, wrapped to the
 *  scratchpad size (the hardware address decoder ignores high bits).
 *  Power-of-two sizes — every real configuration — take the mask
 *  path instead of a hardware divide. */
inline uint32_t
scratchAddress(uint16_t base, uint16_t offset, uint32_t scratch_size)
{
    uint32_t sum = static_cast<uint32_t>(base) + offset;
    return (scratch_size & (scratch_size - 1)) == 0
               ? sum & (scratch_size - 1)
               : sum % scratch_size;
}

/** GLD / GST effective address: {hi, lo} forms a 32-bit word address,
 *  plus the instruction offset (§4.2). */
inline uint64_t
globalAddress(uint16_t lo, uint16_t hi, uint16_t offset)
{
    return (static_cast<uint64_t>(lo) |
            (static_cast<uint64_t>(hi) << 16)) +
           offset;
}

/** Exact per-process register-file sizes: the registers a process
 *  itself initialises, reads, or writes, PLUS every register incoming
 *  SENDs from other processes deliver into (a SEND's rd names a
 *  register of the *target* process, applied in the Vcycle epilogue).
 *  Sizing files from this up front is what lets the engines keep
 *  dense, never-resized register files and assert instead of growing
 *  mid-run. */
inline std::vector<uint32_t>
registerFileSizes(const Program &program)
{
    std::vector<uint32_t> sizes(program.processes.size(), 1);
    auto grow = [&](size_t pid, Reg reg) {
        if (reg != kNoReg)
            sizes[pid] = std::max(sizes[pid], reg + 1);
    };
    for (size_t pid = 0; pid < program.processes.size(); ++pid) {
        const Process &p = program.processes[pid];
        for (const auto &[reg, v] : p.init)
            grow(pid, reg);
        for (const Instruction &inst : p.body) {
            grow(pid, inst.destination());
            for (Reg s : inst.sources())
                grow(pid, s);
            if (inst.opcode == Opcode::Send &&
                inst.target < program.processes.size())
                grow(inst.target, inst.rd);
        }
    }
    return sizes;
}

} // namespace manticore::isa::exec

#endif // MANTICORE_ISA_EXEC_SEMANTICS_HH
