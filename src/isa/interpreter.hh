/**
 * @file
 * Full-fledged functional ISA simulator, parameterised by the hardware
 * configuration (§6 of the paper).  It executes one Vcycle at a time:
 * every process body runs to completion in program order, SENDs are
 * buffered and applied at the Vcycle boundary (the epilogue), and
 * EXPECT mismatches are serviced through a host callback exactly at
 * the raise point, mirroring the global-stall exception mechanism.
 *
 * The interpreter is untimed; the machine simulator (src/machine) adds
 * the cycle-level pipeline/NoC/cache model.  Both must produce
 * identical architectural state, which the test suite checks.
 */

#ifndef MANTICORE_ISA_INTERPRETER_HH
#define MANTICORE_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"

namespace manticore::isa {

/** Word-addressed 16-bit global (DRAM) memory shared by the
 *  interpreter, the machine simulator, and the host runtime.
 *
 *  Sparse paged store: 4 KiB pages (2048 words) keyed by page number
 *  in a flat hash map, so streaming access touches one map lookup and
 *  then dense array words instead of one hash probe per word.  Each
 *  page carries a written-word bitmap so footprint() still reports the
 *  number of distinct words ever written (including zero writes),
 *  matching the old per-word map's semantics. */
class GlobalMemory
{
  public:
    uint16_t
    read(uint64_t addr) const
    {
        auto it = _pages.find(addr / kPageWords);
        return it == _pages.end() ? 0
                                  : it->second.words[addr % kPageWords];
    }

    void
    write(uint64_t addr, uint16_t value)
    {
        Page &p = _pages[addr / kPageWords];
        uint64_t off = addr % kPageWords;
        uint64_t bit = 1ull << (off % 64);
        if (!(p.written[off / 64] & bit)) {
            p.written[off / 64] |= bit;
            ++_footprint;
        }
        p.words[off] = value;
    }

    /** Number of distinct words ever written. */
    size_t footprint() const { return _footprint; }

  private:
    static constexpr uint64_t kPageWords = 2048; ///< 4 KiB per page

    struct Page
    {
        std::array<uint16_t, kPageWords> words{};
        std::array<uint64_t, kPageWords / 64> written{};
    };

    std::unordered_map<uint64_t, Page> _pages;
    size_t _footprint = 0;
};

enum class RunStatus
{
    Running,
    Finished,
    Failed,
};

/** What the host decides after servicing an exception. */
enum class HostAction
{
    Continue,
    Finish,
    Fail,
};

class Interpreter
{
  public:
    Interpreter(const Program &program, const MachineConfig &config);

    /** Execute one Vcycle; returns the status after servicing any
     *  exceptions raised during it. */
    RunStatus stepVcycle();

    /** Run until finish/failure or max_vcycles. */
    RunStatus run(uint64_t max_vcycles);

    uint64_t vcycle() const { return _vcycle; }
    RunStatus status() const { return _status; }

    /** Raised when an EXPECT fires; defaults to Finish on any
     *  exception.  The runtime::Host installs the real servicing. */
    std::function<HostAction(uint32_t pid, uint16_t eid)> onException;

    /** 16-bit value of a register of a process. */
    uint16_t regValue(uint32_t pid, Reg reg) const;
    /** Carry bit of a register of a process. */
    bool regCarry(uint32_t pid, Reg reg) const;
    uint16_t scratchValue(uint32_t pid, uint32_t addr) const;

    GlobalMemory &globalMemory() { return _global; }
    const GlobalMemory &globalMemory() const { return _global; }

    /** Dynamic instruction count (excluding NOp) over all processes. */
    uint64_t instructionsExecuted() const { return _instretNonNop; }
    uint64_t sendsExecuted() const { return _sends; }

  private:
    struct ProcState
    {
        std::vector<uint32_t> regs; ///< bit 16 = carry
        std::vector<uint16_t> scratch;
        bool pred = false;
    };

    void executeProcess(uint32_t pid);
    uint32_t &regRef(uint32_t pid, Reg reg);

    const Program &_program;
    MachineConfig _config;
    std::vector<ProcState> _procs;
    GlobalMemory _global;

    struct Message
    {
        uint32_t targetPid;
        Reg targetReg;
        uint16_t value;
    };
    std::vector<Message> _pendingSends;

    uint64_t _vcycle = 0;
    RunStatus _status = RunStatus::Running;
    uint64_t _instretNonNop = 0;
    uint64_t _sends = 0;
};

} // namespace manticore::isa

#endif // MANTICORE_ISA_INTERPRETER_HH
