/**
 * @file
 * Functional ISA simulators, parameterised by the hardware
 * configuration (§6 of the paper).  Both engines execute one Vcycle
 * at a time: every process body runs to completion in program order,
 * SENDs are buffered and applied at the Vcycle boundary (the
 * epilogue), and EXPECT mismatches are serviced through a host
 * callback exactly at the raise point, mirroring the global-stall
 * exception mechanism.
 *
 * Two engines implement the same InterpreterBase interface:
 *
 *  - Interpreter: the reference — walks the Instruction structs
 *    directly; slow but obviously correct, the semantics every other
 *    engine is validated against.
 *
 *  - TapeInterpreter (tape_interpreter.hh): each process body lowered
 *    once into a flat pre-decoded op tape over exactly-sized dense
 *    register files — NOP slots elided, operands resolved, common
 *    pairs fused.  Bit-identical architectural state, several times
 *    faster (see src/isa/README.md).
 *
 * makeInterpreter() picks an engine at runtime, mirroring
 * netlist::makeEvaluator.  Both are untimed; the machine simulator
 * (src/machine) adds the cycle-level pipeline/NoC/cache model.  All
 * three must produce identical architectural state, which the
 * randomized differential suite checks.
 */

#ifndef MANTICORE_ISA_INTERPRETER_HH
#define MANTICORE_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"

namespace manticore::support {
class ByteWriter;
class ByteReader;
} // namespace manticore::support

namespace manticore::isa {

/** Word-addressed 16-bit global (DRAM) memory shared by the
 *  interpreter, the machine simulator, and the host runtime.
 *
 *  Sparse paged store: 4 KiB pages (2048 words) keyed by page number
 *  in a flat hash map, so streaming access touches one map lookup and
 *  then dense array words instead of one hash probe per word.  Each
 *  page carries a written-word bitmap so footprint() still reports the
 *  number of distinct words ever written (including zero writes),
 *  matching the old per-word map's semantics. */
class GlobalMemory
{
  public:
    uint16_t
    read(uint64_t addr) const
    {
        auto it = _pages.find(addr / kPageWords);
        return it == _pages.end() ? 0
                                  : it->second.words[addr % kPageWords];
    }

    void
    write(uint64_t addr, uint16_t value)
    {
        Page &p = _pages[addr / kPageWords];
        uint64_t off = addr % kPageWords;
        uint64_t bit = 1ull << (off % 64);
        if (!(p.written[off / 64] & bit)) {
            p.written[off / 64] |= bit;
            ++_footprint;
        }
        p.words[off] = value;
    }

    /** Number of distinct words ever written. */
    size_t footprint() const { return _footprint; }

    /** Serialize every page (sorted by page number, so the byte
     *  stream is deterministic) for an engine snapshot. */
    void save(support::ByteWriter &w) const;
    /** Replace the contents from a serialized stream. */
    void load(support::ByteReader &r);

  private:
    static constexpr uint64_t kPageWords = 2048; ///< 4 KiB per page

    struct Page
    {
        std::array<uint16_t, kPageWords> words{};
        std::array<uint64_t, kPageWords / 64> written{};
    };

    std::unordered_map<uint64_t, Page> _pages;
    size_t _footprint = 0;
};

enum class RunStatus
{
    Running,
    Finished,
    Failed,
};

/** What the host decides after servicing an exception. */
enum class HostAction
{
    Continue,
    Finish,
    Fail,
};

/** Common interface of the functional ISA engines.  The runtime::Host
 *  attaches to this, so harnesses can swap engines freely. */
class InterpreterBase
{
  public:
    virtual ~InterpreterBase() = default;

    /** Execute one Vcycle; returns the status after servicing any
     *  exceptions raised during it. */
    virtual RunStatus stepVcycle() = 0;

    /** Run until finish/failure or max_vcycles.  The tape engine
     *  overrides this with a natively batched loop (one dispatch per
     *  batch); the result is cycle-exact either way. */
    virtual RunStatus
    run(uint64_t max_vcycles)
    {
        for (uint64_t i = 0;
             i < max_vcycles && status() == RunStatus::Running; ++i)
            stepVcycle();
        return status();
    }

    virtual uint64_t vcycle() const = 0;
    virtual RunStatus status() const = 0;

    /** 16-bit value of a register of a process (0 if out of file). */
    virtual uint16_t regValue(uint32_t pid, Reg reg) const = 0;
    /** Carry bit of a register of a process. */
    virtual bool regCarry(uint32_t pid, Reg reg) const = 0;
    virtual uint16_t scratchValue(uint32_t pid, uint32_t addr) const = 0;

    virtual GlobalMemory &globalMemory() = 0;
    virtual const GlobalMemory &globalMemory() const = 0;

    /** Dynamic instruction count (excluding NOP) over all processes. */
    virtual uint64_t instructionsExecuted() const = 0;
    virtual uint64_t sendsExecuted() const = 0;

    /** Raised when an EXPECT fires; defaults to Finish on any
     *  exception.  The runtime::Host installs the real servicing. */
    std::function<HostAction(uint32_t pid, uint16_t eid)> onException;

    // ---- ensemble views -------------------------------------------
    // An interpreter may advance N decoupled simulations ("lanes") per
    // Vcycle (currently only the tape engine, see tape_interpreter.hh).
    // Lane 0 is always the scalar API above; every default below is
    // the 1-lane degenerate case, so scalar engines need no overrides.

    /** Ensemble width (1 for scalar engines). */
    virtual unsigned lanes() const { return 1; }
    virtual RunStatus laneStatus(unsigned lane) const;
    virtual uint64_t laneVcycle(unsigned lane) const;
    virtual uint16_t regValueLane(unsigned lane, uint32_t pid,
                                  Reg reg) const;
    virtual bool regCarryLane(unsigned lane, uint32_t pid,
                              Reg reg) const;
    virtual uint16_t scratchValueLane(unsigned lane, uint32_t pid,
                                      uint32_t addr) const;
    virtual GlobalMemory &globalMemoryLane(unsigned lane);
    virtual const GlobalMemory &globalMemoryLane(unsigned lane) const;
    virtual uint64_t laneInstructionsExecuted(unsigned lane) const;
    virtual uint64_t laneSendsExecuted(unsigned lane) const;

    /** Lane-aware EXPECT servicing: when set, a laned interpreter
     *  calls this INSTEAD of onException so the host can consult the
     *  raising lane's global memory.  Scalar engines ignore it. */
    std::function<HostAction(unsigned lane, uint32_t pid, uint16_t eid)>
        onExceptionLane;

    // ---- checkpoint/restore (engine::Snapshot plumbing) -----------
    // One canonical byte format for the whole ISA family: per-process
    // register files (16-bit value + carry), scratchpads, predicate
    // flags, the pending message buffer (architecturally empty at
    // every Vcycle boundary — asserted on save), the global memory
    // pages and the run counters.  Both interpreters size their
    // register files through exec::registerFileSizes, so a snapshot
    // saved on either restores on the other bit-identically.

    /** Does this interpreter implement save/restore? */
    virtual bool snapshotSupported() const { return false; }
    /** Serialize the full architectural state (canonical format). */
    virtual void saveState(support::ByteWriter &w) const;
    /** Restore from the canonical format; geometry mismatches
     *  (process count, register-file sizes) are a loud fatal(). */
    virtual void restoreState(support::ByteReader &r);

    /** Serialize ONE lane in the same canonical per-lane byte format
     *  saveState writes for a scalar engine, so a lane section taken
     *  from an N-lane engine restores on a 1-lane engine of either
     *  family and vice versa.  A laned saveState is exactly the
     *  requested lanes' sections concatenated in lane order. */
    virtual void saveLaneState(unsigned lane,
                               support::ByteWriter &w) const;
    virtual void restoreLaneState(unsigned lane,
                                  support::ByteReader &r);
};

/** Which functional engine makeInterpreter() should build. */
enum class ExecMode
{
    Reference, ///< instruction-walking Interpreter (obviously correct)
    Tape,      ///< flat pre-decoded tape (fast, bit-identical)
};

const char *execModeName(ExecMode mode);

/** Parse "reference" / "tape" (the execModeName spellings) into an
 *  ExecMode; returns false on anything else. */
bool parseExecMode(const std::string &name, ExecMode &mode);

/** Build an interpreter over the program in the given mode.  The
 *  program and config must outlive the interpreter (same contract as
 *  the direct constructors).  lanes > 1 requests an N-lane ensemble:
 *  only the tape engine supports it (the reference interpreter is
 *  deliberately kept scalar), and it caps at 16 lanes — both limits
 *  are a loud fatal(). */
std::unique_ptr<InterpreterBase>
makeInterpreter(const Program &program, const MachineConfig &config,
                ExecMode mode, unsigned lanes = 1);

class Interpreter : public InterpreterBase
{
  public:
    Interpreter(const Program &program, const MachineConfig &config);

    RunStatus stepVcycle() override;

    uint64_t vcycle() const override { return _vcycle; }
    RunStatus status() const override { return _status; }

    uint16_t regValue(uint32_t pid, Reg reg) const override;
    bool regCarry(uint32_t pid, Reg reg) const override;
    uint16_t scratchValue(uint32_t pid, uint32_t addr) const override;

    GlobalMemory &globalMemory() override { return _global; }
    const GlobalMemory &globalMemory() const override { return _global; }

    uint64_t instructionsExecuted() const override
    {
        return _instretNonNop;
    }
    uint64_t sendsExecuted() const override { return _sends; }

    bool snapshotSupported() const override { return true; }
    void saveState(support::ByteWriter &w) const override;
    void restoreState(support::ByteReader &r) override;

  private:
    struct ProcState
    {
        std::vector<uint32_t> regs; ///< bit 16 = carry
        std::vector<uint16_t> scratch;
        bool pred = false;
    };

    void executeProcess(uint32_t pid);
    uint32_t &regRef(uint32_t pid, Reg reg);

    const Program &_program;
    MachineConfig _config;
    std::vector<ProcState> _procs;
    GlobalMemory _global;

    struct Message
    {
        uint32_t targetPid;
        Reg targetReg;
        uint16_t value;
    };
    std::vector<Message> _pendingSends;

    uint64_t _vcycle = 0;
    RunStatus _status = RunStatus::Running;
    uint64_t _instretNonNop = 0;
    uint64_t _sends = 0;
};

} // namespace manticore::isa

#endif // MANTICORE_ISA_INTERPRETER_HH
