/**
 * @file
 * Randomized differential fuzzer with automatic replay artifacts:
 * generates random-but-valid netlists (tests/random_circuit.hh),
 * drives every free input with a fresh random waveform each cycle,
 * and locksteps the reference evaluator against each fast netlist
 * engine.  On the FIRST divergence the attached ReplayRecorder
 * writes a one-file replay artifact (design seed + the full recorded
 * stimulus + the golden's expected terminal) and the fuzzer exits
 * nonzero — the artifact alone reproduces the failure via
 * `replay_runner <artifact>` in a fresh process.
 *
 *   fuzz_differential [--seconds N] [--seed S] [--dir D]
 *
 * CI-friendly: --seconds bounds wall-clock (default 10), --seed makes
 * the whole session deterministic, --dir picks the artifact
 * directory ($MANTICORE_REPLAY_DIR, else ./replay-artifacts).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "runtime/replay.hh"
#include "runtime/waveform.hh"
#include "support/rng.hh"
#include "tests/random_circuit.hh"

using namespace manticore;

namespace {

uint64_t
u64Flag(int argc, char **argv, const char *name, uint64_t fallback)
{
    size_t len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return std::strtoull(argv[i + 1], nullptr, 0);
        if (std::strncmp(argv[i], name, len) == 0 &&
            argv[i][len] == '=')
            return std::strtoull(argv[i] + len + 1, nullptr, 0);
    }
    return fallback;
}

std::string
strFlag(int argc, char **argv, const char *name,
        const std::string &fallback)
{
    size_t len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], name, len) == 0 &&
            argv[i][len] == '=')
            return argv[i] + len + 1;
    }
    return fallback;
}

/** Same directory the replay artifact lands in (see
 *  ReplayRecorder::write). */
std::string
artifactDir(const std::string &dir)
{
    if (!dir.empty())
        return dir;
    if (const char *env = std::getenv("MANTICORE_REPLAY_DIR"))
        return env;
    return "replay-artifacts";
}

/** Dump the subject's recorded waveform (the diverging lane only)
 *  next to the replay artifact; returns the path, "" on I/O error. */
std::string
writeDivergenceVcd(const runtime::WaveformRecorder &wave,
                   const std::string &dir, uint64_t seed,
                   const std::string &subject, unsigned lane)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "";
    std::string path = dir + "/fuzz-" + std::to_string(seed) + "-" +
                       subject + "-lane" + std::to_string(lane) +
                       ".vcd";
    std::ofstream os(path);
    if (!os)
        return "";
    wave.writeVcd(os);
    return os ? path : "";
}

} // namespace

int
main(int argc, char **argv)
{
    const uint64_t seconds = u64Flag(argc, argv, "--seconds", 10);
    const uint64_t seed0 = u64Flag(argc, argv, "--seed", 1);
    const uint64_t max_cycles =
        u64Flag(argc, argv, "--max-cycles", 150);
    const std::string dir = strFlag(argc, argv, "--dir", "");

    // Subjects: the fast netlist engines (random circuits have free
    // inputs, which the ISA-level engines compile away).  netlist.aot
    // is skipped when no toolchain is present — and by default too:
    // per-circuit AOT compiles dominate the budget.
    std::vector<std::string> subjects = {"netlist.compiled",
                                         "netlist.parallel"};
    if (u64Flag(argc, argv, "--aot", 0)) {
        const engine::EngineInfo *aot = engine::find("netlist.aot");
        if (aot && aot->available)
            subjects.push_back("netlist.aot");
        else
            std::fprintf(stderr, "--aot: netlist.aot unavailable (%s)"
                                 ", skipping\n",
                         aot ? aot->availabilityNote.c_str() : "?");
    }

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(seconds);
    uint64_t circuits = 0, pairs = 0;
    for (uint64_t iter = 0;
         std::chrono::steady_clock::now() < deadline; ++iter) {
        const uint64_t seed = seed0 + iter;
        netlist::Netlist nl = testing::RandomCircuit(seed).build();
        ++circuits;

        // Free inputs of the circuit, driven fresh each cycle.
        std::vector<std::string> input_names;
        std::vector<unsigned> input_widths;
        for (size_t i = 0; i < nl.numNodes(); ++i) {
            const netlist::Node &n =
                nl.node(static_cast<netlist::NodeId>(i));
            if (n.kind == netlist::OpKind::Input) {
                input_names.push_back(n.name);
                input_widths.push_back(n.width);
            }
        }

        for (const std::string &subject_name : subjects) {
            auto golden = engine::create("netlist.reference", nl);
            auto subject = engine::create(subject_name, nl);
            ++pairs;

            runtime::ReplayRecorder recorder;
            recorder.trace.designKind = "random";
            recorder.trace.designArg = std::to_string(seed);
            recorder.trace.designHash = engine::designHash(nl);
            recorder.signals = runtime::probeSignals(nl);
            recorder.dir = dir;
            recorder.stem = "fuzz";

            engine::CrossCheck cc(*golden, *subject);
            cc.setRecorder(&recorder);

            // Per-lane waveform of the subject: on divergence the VCD
            // of the failing lane lands next to the replay artifact.
            runtime::WaveformRecorder wave(nl);

            std::vector<engine::InputHandle> gh, sh;
            for (const std::string &name : input_names) {
                gh.push_back(golden->bindInput(name));
                sh.push_back(subject->bindInput(name));
            }

            // One stimulus stream per (seed, subject) pair keeps a
            // failure reproducible from the artifact alone.
            Rng stimulus(seed ^ 0x5f5f5f5f5f5f5f5full);
            for (uint64_t cycle = 0; cycle < max_cycles; ++cycle) {
                for (size_t i = 0; i < input_names.size(); ++i) {
                    BitVector value =
                        testing::randomValue(stimulus, input_widths[i]);
                    recorder.poke(cycle, 0, input_names[i], value);
                    golden->setInput(gh[i], value);
                    subject->setInput(sh[i], value);
                }
                engine::RunResult r = cc.run(1);
                wave.sample(*subject, /*lane=*/0, cycle);
                if (cc.diverged()) {
                    std::string vcd = writeDivergenceVcd(
                        wave, artifactDir(dir), seed, subject_name,
                        /*lane=*/0);
                    std::fprintf(stderr,
                                 "DIVERGENCE seed %llu %s vs "
                                 "netlist.reference: %s\n  lane "
                                 "waveform: %s\n",
                                 static_cast<unsigned long long>(seed),
                                 subject_name.c_str(),
                                 cc.divergence().c_str(),
                                 vcd.empty() ? "(vcd write failed)"
                                             : vcd.c_str());
                    return 1;
                }
                if (r.status != engine::Status::Running)
                    break; // agreed terminal: next pair
            }
        }
    }
    std::printf("fuzz: %llu circuit(s), %llu engine pair(s), no "
                "divergence (seed %llu, %llu s budget)\n",
                static_cast<unsigned long long>(circuits),
                static_cast<unsigned long long>(pairs),
                static_cast<unsigned long long>(seed0),
                static_cast<unsigned long long>(seconds));
    return 0;
}
