/**
 * @file
 * (Re)generate the checked-in replay corpus under
 * tests/replay_corpus/.  Each artifact is built by actually running
 * one scalar netlist.reference golden per lane with that lane's
 * recorded pokes and pinning the observed terminal (status, cycle,
 * probe digest) as the expectation — so the corpus is self-consistent
 * by construction and every other engine is then held to the
 * reference's behavior byte-exactly.
 *
 *   make_replay_corpus [output-dir]      # default tests/replay_corpus
 *
 * The corpus covers the three behaviors the replay format exists to
 * pin down: a clean $finish (mm, noc), an injected assertion failure
 * (openctr + fault poke), divergent per-lane terminations in one
 * ensemble artifact (finish / assert-fail / still-running / later
 * assert-fail across 4 lanes), and a mid-flight Running expectation
 * (mm stopped before its driver's horizon).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "runtime/replay.hh"

using namespace manticore;
using runtime::ReplayExpect;
using runtime::ReplayPoke;
using runtime::ReplayTrace;

namespace {

/** Run one lane's scalar golden under the trace's stimulus and pin
 *  its terminal as the lane's expectation (same loop as replayOn). */
ReplayExpect
pinLane(const ReplayTrace &trace, const netlist::Netlist &netlist,
        const std::vector<runtime::ProbeSignal> &signals, unsigned lane)
{
    auto eng = engine::create("netlist.reference", netlist);
    std::vector<const ReplayPoke *> pokes;
    std::vector<engine::InputHandle> handles;
    for (const ReplayPoke &p : trace.pokes) {
        if (p.lane != lane)
            continue;
        pokes.push_back(&p);
        handles.push_back(eng->bindInput(p.input));
    }
    size_t next = 0;
    while (eng->cycle() < trace.runCycles) {
        uint64_t c = eng->cycle();
        while (next < pokes.size() && pokes[next]->cycle <= c) {
            eng->setInput(handles[next], pokes[next]->value);
            ++next;
        }
        if (eng->step(1).cycles == 0)
            break;
    }
    ReplayExpect e;
    e.lane = lane;
    e.status = eng->status();
    e.cycle = eng->cycle();
    e.digest = runtime::probeDigest(*eng, 0, signals);
    return e;
}

/** Fill hash + expectations, optionally tighten runCycles to the last
 *  terminal cycle, write, and sanity-replay on the reference. */
void
emit(ReplayTrace trace, const std::string &dir,
     const std::string &filename, bool tighten)
{
    netlist::Netlist netlist = runtime::buildReplayDesign(trace);
    trace.designHash = engine::designHash(netlist);
    std::vector<runtime::ProbeSignal> signals =
        runtime::probeSignals(netlist);

    trace.expectations.clear();
    for (unsigned l = 0; l < trace.lanes; ++l)
        trace.expectations.push_back(
            pinLane(trace, netlist, signals, l));

    if (tighten) {
        // +1: a failed assert suppresses the cycle commit, so a
        // lane's terminal cycle is the cycle it was still ON when the
        // failing step ran — the horizon must cover that step.
        uint64_t last = 0;
        for (const ReplayExpect &e : trace.expectations)
            last = std::max(last, e.cycle + 1);
        trace.runCycles = last;
        // Terminal state is frozen, so the tightened horizon pins the
        // same expectations — but re-pin to keep it honest.
        trace.expectations.clear();
        for (unsigned l = 0; l < trace.lanes; ++l)
            trace.expectations.push_back(
                pinLane(trace, netlist, signals, l));
    }

    const std::string path = dir + "/" + filename;
    trace.writeFile(path);

    // Sanity: a multi-lane artifact needs an ensemble-capable engine.
    runtime::ReplayResult check = runtime::replayOn(
        trace, netlist,
        trace.lanes > 1 ? "netlist.compiled" : "netlist.reference");
    if (!check.ran || !check.passed) {
        std::fprintf(stderr, "%s: self-replay failed: %s%s\n",
                     path.c_str(), check.skipReason.c_str(),
                     check.detail.c_str());
        std::exit(1);
    }
    std::printf("wrote %s (%u lane(s), run %llu)\n", path.c_str(),
                trace.lanes,
                static_cast<unsigned long long>(trace.runCycles));
}

ReplayPoke
poke(uint64_t cycle, unsigned lane, const char *input, uint64_t value)
{
    ReplayPoke p;
    p.cycle = cycle;
    p.lane = lane;
    p.input = input;
    p.value = BitVector(1, value);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "tests/replay_corpus";

    // 1. Clean $finish: mm's self-checking driver at a short horizon.
    {
        ReplayTrace t;
        t.designKind = "builtin";
        t.designArg = "mm";
        t.designParam = 96;
        t.engine = "netlist.reference";
        t.lanes = 1;
        t.runCycles = 300;
        t.notes.push_back("corpus: clean $finish (mm, 96-cycle "
                          "driver horizon)");
        emit(std::move(t), dir, "mm-finish.replay", /*tighten=*/true);
    }

    // 2. Clean $finish on a second design (noc).
    {
        ReplayTrace t;
        t.designKind = "builtin";
        t.designArg = "noc";
        t.designParam = 128;
        t.engine = "netlist.reference";
        t.lanes = 1;
        t.runCycles = 400;
        t.notes.push_back("corpus: clean $finish (noc, 128-cycle "
                          "driver horizon)");
        emit(std::move(t), dir, "noc-finish.replay", /*tighten=*/true);
    }

    // 3. Assertion failure: openctr with a fault poked mid-run.
    {
        ReplayTrace t;
        t.designKind = "openctr";
        t.designArg = "8";
        t.designParam = 200;
        t.engine = "netlist.reference";
        t.lanes = 1;
        t.runCycles = 100;
        t.pokes.push_back(poke(12, 0, "fault", 1));
        t.notes.push_back("corpus: assertion failure (fault poked at "
                          "cycle 12, well before the finish limit)");
        emit(std::move(t), dir, "openctr-assert.replay",
             /*tighten=*/true);
    }

    // 4. Divergent per-lane terminations in ONE ensemble artifact:
    //    lane 0 finishes clean, lane 1 fails early, lane 2 is frozen
    //    by `stop` and is still running at the horizon, lane 3 fails
    //    late.
    {
        ReplayTrace t;
        t.designKind = "openctr";
        t.designArg = "8";
        t.designParam = 40;
        t.engine = "netlist.parallel";
        t.lanes = 4;
        t.runCycles = 60;
        t.pokes.push_back(poke(5, 2, "stop", 1));
        t.pokes.push_back(poke(10, 1, "fault", 1));
        t.pokes.push_back(poke(30, 3, "fault", 1));
        t.notes.push_back("corpus: divergent per-lane terminations — "
                          "finish / early assert / still-running / "
                          "late assert");
        emit(std::move(t), dir, "openctr-lanes.replay",
             /*tighten=*/false);
    }

    // 5. Mid-flight Running expectation: mm stopped at cycle 100 of a
    //    256-cycle driver pins in-progress architectural state.
    {
        ReplayTrace t;
        t.designKind = "builtin";
        t.designArg = "mm";
        t.designParam = 256;
        t.engine = "netlist.reference";
        t.lanes = 1;
        t.runCycles = 100;
        t.notes.push_back("corpus: mid-flight Running state (mm "
                          "stopped before its 256-cycle horizon)");
        emit(std::move(t), dir, "mm-run.replay", /*tighten=*/false);
    }

    return 0;
}
