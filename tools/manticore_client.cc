/**
 * @file
 * manticore-client: batch CLI for a shared manticored instance.
 *
 *   manticore_client --spawn --run-all
 *   manticore_client --server /tmp/manticored.sock run mm
 *   manticore_client --server /tmp/manticored.sock --list
 *
 * `--run-all` is the regression-farm demo this subsystem exists for:
 * all nine Fig. 6 benchmark designs are admitted as concurrent tenant
 * sessions of ONE server and run to their self-check horizons
 * simultaneously on its fixed worker pool — no lock file, no
 * one-job-at-a-time serialization — then each tenant's verdict and
 * per-tenant metering (scheduler quanta/cycles plus the engine's own
 * counters) are printed.  The exit status is nonzero iff any tenant
 * failed its self-check.
 *
 * `--spawn` forks a private manticored (found next to this binary) on
 * a temporary socket and shuts it down on exit, so the demo is one
 * command.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "service/protocol.hh"

using namespace manticore;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--server PATH | --spawn] <mode>\n"
        "modes:\n"
        "  --run-all            run all nine Fig. 6 designs as\n"
        "                       concurrent tenants of one server\n"
        "  run <design> [cycles]  run one design to its horizon\n"
        "  --list               list servable designs and engines\n"
        "options:\n"
        "  --engine NAME        engine for every session (default\n"
        "                       netlist.compiled)\n"
        "  --lanes N            ensemble width per session\n"
        "  --workers N          (with --spawn) server worker count\n",
        argv0);
    return 2;
}

/** Fork a private manticored next to this binary; returns its pid or
 *  -1.  The socket appears asynchronously — poll for connect. */
pid_t
spawnServer(const char *argv0, const std::string &socket_path,
            unsigned workers)
{
    std::string self = argv0;
    size_t slash = self.rfind('/');
    std::string daemon =
        (slash == std::string::npos ? std::string()
                                    : self.substr(0, slash + 1)) +
        "manticored";
    pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        std::string workers_s = std::to_string(workers);
        if (workers != 0)
            ::execl(daemon.c_str(), daemon.c_str(), "--socket",
                    socket_path.c_str(), "--workers",
                    workers_s.c_str(), (char *)nullptr);
        else
            ::execl(daemon.c_str(), daemon.c_str(), "--socket",
                    socket_path.c_str(), (char *)nullptr);
        std::fprintf(stderr, "cannot exec %s: %s\n", daemon.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    return pid;
}

bool
connectWithRetry(service::Client &client, const std::string &path,
                 std::string *error)
{
    for (int attempt = 0; attempt < 100; ++attempt) {
        if (client.connectTo(path, error))
            return true;
        ::usleep(50'000);
    }
    return false;
}

struct Tenant
{
    std::string design;
    service::SessionId id = 0;
    uint64_t horizon = 0;
};

void
printMeter(service::Client &client, const Tenant &t)
{
    std::printf("  %-8s", t.design.c_str());
    for (const auto &kv : client.meter(t.id)) {
        // The interesting per-tenant counters; engines add many more.
        if (kv.first == "service.quanta" ||
            kv.first == "service.cycles" ||
            kv.first == "service.completed_runs" ||
            kv.first == "cycles")
            std::printf("  %s=%llu", kv.first.c_str(),
                        static_cast<unsigned long long>(kv.second));
    }
    std::printf("\n");
}

int
runAll(service::Client &client, const std::string &engine,
       unsigned lanes)
{
    // An unavailable engine (an AOT variant without a working host
    // toolchain) would fail every admission with the same server-side
    // fatal; say why up front instead.
    if (const engine::EngineInfo *info = engine::find(engine);
        info && !info->available) {
        std::fprintf(stderr, "engine %s is unavailable on this host: %s\n",
                     engine.c_str(), info->availabilityNote.c_str());
        return 1;
    }
    // The nine Fig. 6 designs are exactly the catalog entries before
    // the micros — ask the server so client and server agree.
    std::vector<Tenant> tenants;
    for (const service::DesignEntry &d : service::designCatalog()) {
        if (d.name == "ctr32" || d.name == "acc8" ||
            d.name == "fifo1" || d.name == "ram1")
            continue;
        tenants.push_back({d.name, 0, d.defaultCycles});
    }

    std::printf("admitting %zu tenants (engine %s, lanes %u)\n",
                tenants.size(), engine.c_str(), lanes);
    for (Tenant &t : tenants) {
        std::string error;
        t.id = client.newSession(t.design, engine, lanes, 0, &error);
        if (t.id == 0) {
            std::fprintf(stderr, "%s: admission failed: %s\n",
                         t.design.c_str(), error.c_str());
            return 1;
        }
        // The designs $finish at their horizon; the slack lets a
        // broken design overrun into a visible Running status rather
        // than a silent exact-count success.
        if (!client.run(t.id, t.horizon + 64, &error)) {
            std::fprintf(stderr, "%s: submit failed: %s\n",
                         t.design.c_str(), error.c_str());
            return 1;
        }
    }

    int failures = 0;
    for (Tenant &t : tenants) {
        client.wait(t.id);
        service::Client::Poll p = client.poll(t.id);
        bool passed = p.ok && p.status == "finished";
        if (!passed)
            ++failures;
        std::printf("%-8s %-8s cycle=%llu lanes=%u\n", t.design.c_str(),
                    p.ok ? p.status.c_str() : "lost",
                    static_cast<unsigned long long>(p.cycle), p.lanes);
        for (const std::string &line : client.displayLog(t.id, 0))
            std::printf("  $display: %s\n", line.c_str());
    }

    std::printf("\nper-tenant metering:\n");
    for (const Tenant &t : tenants)
        printMeter(client, t);
    std::printf("\nservice totals:\n");
    for (const auto &kv : client.serviceStats())
        std::printf("  %-20s %llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));

    std::printf("\n%zu/%zu tenants passed\n",
                tenants.size() - failures, tenants.size());
    return failures == 0 ? 0 : 1;
}

int
runOne(service::Client &client, const std::string &design,
       uint64_t cycles, const std::string &engine, unsigned lanes)
{
    const service::DesignEntry *entry = service::findDesign(design);
    uint64_t horizon =
        cycles ? cycles : (entry ? entry->defaultCycles + 64 : 0);
    std::string error;
    service::SessionId id =
        client.newSession(design, engine, lanes, 0, &error);
    if (id == 0) {
        std::fprintf(stderr, "%s: %s\n", design.c_str(), error.c_str());
        return 1;
    }
    if (!client.run(id, horizon, &error)) {
        std::fprintf(stderr, "%s: %s\n", design.c_str(), error.c_str());
        return 1;
    }
    client.wait(id);
    service::Client::Poll p = client.poll(id);
    std::printf("%s: %s at cycle %llu\n", design.c_str(),
                p.ok ? p.status.c_str() : "lost",
                static_cast<unsigned long long>(p.cycle));
    for (const std::string &line : client.displayLog(id, 0))
        std::printf("  $display: %s\n", line.c_str());
    for (const auto &kv : client.meter(id))
        std::printf("  %-24s %llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));
    return p.ok && p.status == "finished" ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string server_path;
    std::string engine = "netlist.compiled";
    std::string design;
    unsigned lanes = 1;
    unsigned workers = 0;
    uint64_t cycles = 0;
    bool spawn = false, run_all = false, list = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--server" && i + 1 < argc) {
            server_path = argv[++i];
        } else if (arg == "--spawn") {
            spawn = true;
        } else if (arg == "--run-all") {
            run_all = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--lanes" && i + 1 < argc) {
            lanes = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "run" && i + 1 < argc) {
            design = argv[++i];
            if (i + 1 < argc && argv[i + 1][0] != '-')
                cycles = std::strtoull(argv[++i], nullptr, 10);
        } else {
            return usage(argv[0]);
        }
    }
    if (!run_all && !list && design.empty())
        return usage(argv[0]);
    if (spawn == !server_path.empty())
        return usage(argv[0]); // exactly one way to find a server

    std::signal(SIGPIPE, SIG_IGN);

    pid_t server_pid = -1;
    if (spawn) {
        const char *tmp = std::getenv("TMPDIR");
        server_path = std::string(tmp && *tmp ? tmp : "/tmp") +
                      "/manticored-" + std::to_string(::getpid()) +
                      ".sock";
        server_pid = spawnServer(argv[0], server_path, workers);
        if (server_pid < 0) {
            std::fprintf(stderr, "cannot spawn manticored\n");
            return 1;
        }
    }

    service::Client client;
    std::string error;
    int rc = 1;
    if (!connectWithRetry(client, server_path, &error)) {
        std::fprintf(stderr, "cannot connect to %s: %s\n",
                     server_path.c_str(), error.c_str());
    } else if (list) {
        std::printf("designs:\n");
        for (const service::DesignEntry &d : service::designCatalog())
            std::printf("  %-8s (horizon %llu)\n", d.name.c_str(),
                        static_cast<unsigned long long>(
                            d.defaultCycles));
        std::printf("engines:\n");
        for (const auto &kv : client.serviceStats())
            (void)kv; // server reachable; names come from the library
        for (const engine::EngineInfo &info : engine::list()) {
            if (info.available)
                std::printf("  %-20s\n", info.name);
            else
                std::printf("  %-20s (unavailable: %s)\n", info.name,
                            info.availabilityNote.c_str());
        }
        rc = 0;
    } else if (run_all) {
        rc = runAll(client, engine, lanes);
    } else {
        rc = runOne(client, design, cycles, engine, lanes);
    }

    if (server_pid > 0) {
        client.shutdownServer();
        client.close();
        int status = 0;
        ::waitpid(server_pid, &status, 0);
    }
    return rc;
}
