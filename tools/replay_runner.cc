/**
 * @file
 * Re-execute replay artifacts (see src/runtime/replay.hh) against
 * every registered engine:
 *
 *   replay_runner path/to/artifact.replay [more.replay ...]
 *
 * For each artifact the design is rebuilt from its recipe (the
 * structural hash is re-checked), then every engine in the registry
 * replays the recorded stimulus and is held to the recorded
 * expectations — terminal status, cycle, and probe digest per lane.
 * Engines that cannot run an artifact (no ensemble mode for a
 * multi-lane trace, no free inputs for a poked trace, missing AOT
 * toolchain) are reported as SKIP, not errors.  Exit status is
 * nonzero iff any engine that ran failed to reproduce.
 */

#include <cstdio>
#include <string>

#include "engine/registry.hh"
#include "runtime/replay.hh"
#include "support/hashing.hh"
#include "tests/random_circuit.hh"

using namespace manticore;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <artifact.replay> [more.replay ...]\n",
                     argv[0]);
        return 2;
    }

    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        runtime::ReplayTrace trace = runtime::ReplayTrace::load(path);
        std::printf("%s: design %s %s %llu, %u lane(s), %zu poke(s), "
                    "run %llu\n",
                    path.c_str(), trace.designKind.c_str(),
                    trace.designArg.c_str(),
                    static_cast<unsigned long long>(trace.designParam),
                    trace.lanes, trace.pokes.size(),
                    static_cast<unsigned long long>(trace.runCycles));
        for (const std::string &note : trace.notes)
            std::printf("  note: %s\n", note.c_str());

        netlist::Netlist netlist = runtime::buildReplayDesign(
            trace, [](uint64_t seed) {
                return testing::RandomCircuit(seed).build();
            });

        for (const engine::EngineInfo &info : engine::list()) {
            runtime::ReplayResult r =
                runtime::replayOn(trace, netlist, info.name);
            if (!r.ran)
                std::printf("  %-18s SKIP (%s)\n", info.name,
                            r.skipReason.c_str());
            else if (r.passed)
                std::printf("  %-18s PASS\n", info.name);
            else {
                std::printf("  %-18s FAIL: %s\n", info.name,
                            r.detail.c_str());
                ++failures;
            }
        }
    }
    if (failures)
        std::fprintf(stderr, "%d engine run(s) failed to reproduce\n",
                     failures);
    return failures ? 1 : 0;
}
