/**
 * @file
 * SIMD proof for the laned limb kernels: disassemble the built
 * manticore_simd archive (the named lanedFoo{2,4,8,16} instantiations
 * from src/exec/lane_kernels.cc) and FAIL unless vector instructions
 * actually landed at the instantiated widths.  This keeps the
 * "demonstrably auto-vectorizes" property of the ensemble substrate
 * honest across compiler upgrades and flag regressions — a silent
 * fall-back to scalar loops would otherwise only show up as a bench
 * slowdown.
 *
 *   check_vectorized <path/to/libmanticore_simd.a>
 *
 * Policy:
 *  - widths 4, 8, 16 must each have at least one kernel whose body
 *    uses vector registers (x86 xmm/ymm/zmm, AArch64 v<N>.<lanes>);
 *    the pure-bitwise kernels vectorize on every SIMD ISA, so zero
 *    hits means the flags or the loop shape regressed;
 *  - width 2 is reported but not required: two 64-bit limbs fit the
 *    scalar pipes, and the cost model may legitimately prefer them.
 *
 * Exit codes: 0 pass, 1 fail, 77 skip (no objdump/llvm-objdump on
 * PATH, or an object format this checker does not know) — wired as
 * SKIP_RETURN_CODE in CMake so ctest reports it as a skip, not a
 * pass.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

/** Run one command, capture stdout; empty on spawn failure. */
std::string
capture(const std::string &cmd)
{
    std::string out;
    FILE *p = popen(cmd.c_str(), "r");
    if (!p)
        return out;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        out.append(buf, n);
    int rc = pclose(p);
    if (rc != 0)
        out.clear();
    return out;
}

/** "lanedAdd16" -> width 16; 0 when the line is not a laned-kernel
 *  symbol header.  Works on mangled names: the width digits are
 *  terminated by the mangling's 'E'. */
unsigned
lanedSymbolWidth(const std::string &line, std::string &kernel)
{
    // Symbol headers look like "0000... <_ZN...9lanedAdd8EPm...>:".
    if (line.empty() || line.back() != ':' ||
        line.find('<') == std::string::npos)
        return 0;
    size_t at = line.find("laned");
    if (at == std::string::npos)
        return 0;
    size_t i = at + 5;
    std::string name;
    while (i < line.size() && std::isalpha(static_cast<unsigned char>(
                                  line[i])))
        name.push_back(line[i++]);
    unsigned width = 0;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(
                                  line[i])))
        width = width * 10 + (line[i++] - '0');
    kernel = name;
    return width;
}

bool
isVectorLineX86(const std::string &line)
{
    return line.find("%xmm") != std::string::npos ||
           line.find("%ymm") != std::string::npos ||
           line.find("%zmm") != std::string::npos;
}

bool
isVectorLineAArch64(const std::string &line)
{
    // NEON operands: "v3.2d", "v12.4s", ... after a tab or ", ".
    for (size_t i = 0; i + 3 < line.size(); ++i) {
        if (line[i] != 'v' ||
            !std::isdigit(static_cast<unsigned char>(line[i + 1])))
            continue;
        if (i > 0 && line[i - 1] != ' ' && line[i - 1] != '\t' &&
            line[i - 1] != ',')
            continue;
        size_t j = i + 1;
        while (j < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[j])))
            ++j;
        if (j < line.size() && line[j] == '.')
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: check_vectorized <libmanticore_simd.a>\n");
        return 1;
    }
    const std::string archive = argv[1];

    std::string disasm;
    std::string tool;
    for (const char *candidate : {"objdump", "llvm-objdump"}) {
        std::string cmd = std::string(candidate) + " -d '" + archive +
                          "' 2>/dev/null";
        disasm = capture(cmd);
        if (!disasm.empty()) {
            tool = candidate;
            break;
        }
    }
    if (disasm.empty()) {
        std::fprintf(stderr,
                     "check_vectorized: no working objdump/llvm-objdump "
                     "for %s — skipping\n",
                     archive.c_str());
        return 77;
    }

    bool x86 = disasm.find("x86-64") != std::string::npos ||
               disasm.find("i386") != std::string::npos;
    bool arm = disasm.find("aarch64") != std::string::npos ||
               disasm.find("littleaarch64") != std::string::npos;
    if (!x86 && !arm) {
        std::fprintf(stderr, "check_vectorized: unrecognized object "
                             "format (neither x86-64 nor aarch64) — "
                             "skipping\n");
        return 77;
    }

    // Walk the disassembly symbol by symbol, counting vector lines.
    std::map<unsigned, std::set<std::string>> vectorized; // width->kernels
    std::map<unsigned, std::set<std::string>> seen;
    unsigned cur_width = 0;
    std::string cur_kernel;
    size_t pos = 0;
    while (pos < disasm.size()) {
        size_t eol = disasm.find('\n', pos);
        if (eol == std::string::npos)
            eol = disasm.size();
        std::string line = disasm.substr(pos, eol - pos);
        pos = eol + 1;

        std::string kernel;
        if (unsigned w = lanedSymbolWidth(line, kernel)) {
            cur_width = w;
            cur_kernel = kernel;
            seen[w].insert(kernel);
            continue;
        }
        if (line.empty()) { // blank line ends the symbol body
            cur_width = 0;
            continue;
        }
        if (cur_width == 0)
            continue;
        bool vec = x86 ? isVectorLineX86(line) : isVectorLineAArch64(line);
        if (vec)
            vectorized[cur_width].insert(cur_kernel);
    }

    if (seen.empty()) {
        std::fprintf(stderr, "check_vectorized: no laned* symbols in "
                             "%s (wrong archive?)\n",
                     archive.c_str());
        return 1;
    }

    int rc = 0;
    for (auto &[width, kernels] : seen) {
        size_t hits = vectorized[width].size();
        // Width 2 is two 64-bit limbs: scalar pipes may legitimately
        // win, so it is advisory.  The wider instantiations must
        // vectorize somewhere or the SIMD flags regressed.
        bool required = width >= 4;
        const char *verdict =
            hits ? "vectorized" : (required ? "SCALAR (FAIL)" : "scalar (ok)");
        std::printf("width %2u: %2zu/%2zu kernels %s\n", width, hits,
                    kernels.size(), verdict);
        if (required && hits == 0)
            rc = 1;
    }
    if (rc)
        std::fprintf(stderr,
                     "check_vectorized: no vector instructions at a "
                     "required width (disassembled with %s) — the "
                     "laned kernels regressed to scalar code\n",
                     tool.c_str());
    else
        std::printf("check_vectorized: OK (%s, %s)\n", tool.c_str(),
                    x86 ? "x86-64" : "aarch64");
    return rc;
}
