/**
 * @file
 * SIMD proof for the laned limb kernels: disassemble the built
 * manticore_simd archive (the named lanedFoo{2,4,8,16} instantiations
 * from src/exec/lane_kernels.cc) and FAIL unless vector instructions
 * actually landed at the instantiated widths.  This keeps the
 * "demonstrably auto-vectorizes" property of the ensemble substrate
 * honest across compiler upgrades and flag regressions — a silent
 * fall-back to scalar loops would otherwise only show up as a bench
 * slowdown.
 *
 *   check_vectorized <path/to/libmanticore_simd.a>
 *   check_vectorized --aot
 *
 * Policy (archive mode):
 *  - widths 4, 8, 16 must each have at least one kernel whose body
 *    uses vector registers (x86 xmm/ymm/zmm, AArch64 v<N>.<lanes>);
 *    the pure-bitwise kernels vectorize on every SIMD ISA, so zero
 *    hits means the flags or the loop shape regressed;
 *  - width 2 is reported but not required: two 64-bit limbs fit the
 *    scalar pipes, and the cost model may legitimately prefer them.
 *
 * `--aot` proves the SAME property for the laned AOT codegen path
 * (netlist.aot with lanes > 1): it builds a small mixing design's
 * laned cycle objects at widths 4, 8 and 16 through AotEvaluator —
 * into a private throwaway cache — disassembles each dlopen'd .so,
 * and fails unless the cycle function's body uses vector registers.
 * A laned object regressing to scalar code would otherwise only show
 * up as an ensemble-bench slowdown.
 *
 * Exit codes: 0 pass, 1 fail, 77 skip (no objdump/llvm-objdump on
 * PATH, an object format this checker does not know, or --aot
 * without a working host toolchain) — wired as SKIP_RETURN_CODE in
 * CMake so ctest reports it as a skip, not a pass.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "netlist/aot.hh"
#include "netlist/builder.hh"

namespace {

/** Run one command, capture stdout; empty on spawn failure. */
std::string
capture(const std::string &cmd)
{
    std::string out;
    FILE *p = popen(cmd.c_str(), "r");
    if (!p)
        return out;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        out.append(buf, n);
    int rc = pclose(p);
    if (rc != 0)
        out.clear();
    return out;
}

/** "lanedAdd16" -> width 16; 0 when the line is not a laned-kernel
 *  symbol header.  Works on mangled names: the width digits are
 *  terminated by the mangling's 'E'. */
unsigned
lanedSymbolWidth(const std::string &line, std::string &kernel)
{
    // Symbol headers look like "0000... <_ZN...9lanedAdd8EPm...>:".
    if (line.empty() || line.back() != ':' ||
        line.find('<') == std::string::npos)
        return 0;
    size_t at = line.find("laned");
    if (at == std::string::npos)
        return 0;
    size_t i = at + 5;
    std::string name;
    while (i < line.size() && std::isalpha(static_cast<unsigned char>(
                                  line[i])))
        name.push_back(line[i++]);
    unsigned width = 0;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(
                                  line[i])))
        width = width * 10 + (line[i++] - '0');
    kernel = name;
    return width;
}

bool
isVectorLineX86(const std::string &line)
{
    return line.find("%xmm") != std::string::npos ||
           line.find("%ymm") != std::string::npos ||
           line.find("%zmm") != std::string::npos;
}

bool
isVectorLineAArch64(const std::string &line)
{
    // NEON operands: "v3.2d", "v12.4s", ... after a tab or ", ".
    for (size_t i = 0; i + 3 < line.size(); ++i) {
        if (line[i] != 'v' ||
            !std::isdigit(static_cast<unsigned char>(line[i + 1])))
            continue;
        if (i > 0 && line[i - 1] != ' ' && line[i - 1] != '\t' &&
            line[i - 1] != ',')
            continue;
        size_t j = i + 1;
        while (j < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[j])))
            ++j;
        if (j < line.size() && line[j] == '.')
            return true;
    }
    return false;
}

/** Disassemble `path` with the first working disassembler; empty on
 *  none.  `tool` reports which one ran. */
std::string
disassemble(const std::string &path, std::string &tool)
{
    for (const char *candidate : {"objdump", "llvm-objdump"}) {
        std::string cmd = std::string(candidate) + " -d '" + path +
                          "' 2>/dev/null";
        std::string disasm = capture(cmd);
        if (!disasm.empty()) {
            tool = candidate;
            return disasm;
        }
    }
    return {};
}

/** A small design whose tape mixes narrow adds / xors / muxes /
 *  compares — every op lowers to a laned kernel call in the emitted
 *  source, so the laned object has plenty to vectorize. */
manticore::netlist::Netlist
mixingDesign()
{
    using namespace manticore;
    netlist::CircuitBuilder b("check_vectorized_aot");
    std::vector<netlist::RegHandle> regs;
    for (unsigned i = 0; i < 8; ++i)
        regs.push_back(b.reg("r" + std::to_string(i), 32, i + 1));
    for (unsigned i = 0; i < 8; ++i) {
        netlist::Signal a = regs[i].read();
        netlist::Signal c = regs[(i + 1) % 8].read();
        netlist::Signal mixed =
            (a + c) ^ (a & b.lit(32, 0x9e3779b9ull)) ^ c.lshr(3);
        b.next(regs[i], b.mux(a < c, mixed, mixed + b.lit(32, 1)));
    }
    return b.build();
}

/** --aot mode: build the laned AOT cycle objects at the given widths
 *  into a throwaway cache and require vector code in each. */
int
checkAotObjects()
{
    using namespace manticore;
    const netlist::AotToolchain &tc = netlist::aotToolchain();
    if (!tc.ok) {
        std::fprintf(stderr,
                     "check_vectorized --aot: no working host "
                     "toolchain (%s) — skipping\n",
                     tc.message.c_str());
        return 77;
    }

    namespace fs = std::filesystem;
    std::error_code ec;
    std::string cache =
        (fs::temp_directory_path(ec) /
         ("check-vectorized-aot-" +
          std::to_string(static_cast<long>(getpid()))))
            .string();

    int rc = 0;
    bool skipped = false;
    for (unsigned width : {4u, 8u, 16u}) {
        netlist::EvalOptions options;
        options.lanes = width;
        options.aotCacheDir = cache;
        netlist::AotEvaluator eval(mixingDesign(), options);
        if (!eval.usingAot()) {
            std::fprintf(stderr,
                         "check_vectorized --aot: width %u object "
                         "failed to build/load\n",
                         width);
            rc = 1;
            continue;
        }
        std::string tool;
        std::string disasm = disassemble(eval.objectPath(), tool);
        if (disasm.empty()) {
            std::fprintf(stderr,
                         "check_vectorized --aot: no working "
                         "objdump/llvm-objdump for %s — skipping\n",
                         eval.objectPath().c_str());
            skipped = true;
            continue;
        }
        bool x86 = disasm.find("x86-64") != std::string::npos ||
                   disasm.find("i386") != std::string::npos;
        bool arm = disasm.find("aarch64") != std::string::npos ||
                   disasm.find("littleaarch64") != std::string::npos;
        if (!x86 && !arm) {
            std::fprintf(stderr,
                         "check_vectorized --aot: unrecognized object "
                         "format — skipping\n");
            skipped = true;
            continue;
        }

        // Count vector lines inside the cycle symbols only (the .so
        // also carries loader scaffolding).
        size_t hits = 0;
        bool in_cycle = false;
        size_t pos = 0;
        while (pos < disasm.size()) {
            size_t eol = disasm.find('\n', pos);
            if (eol == std::string::npos)
                eol = disasm.size();
            std::string line = disasm.substr(pos, eol - pos);
            pos = eol + 1;
            if (!line.empty() && line.back() == ':' &&
                line.find('<') != std::string::npos) {
                in_cycle = line.find("cycle") != std::string::npos;
                continue;
            }
            if (line.empty()) {
                in_cycle = false;
                continue;
            }
            if (in_cycle &&
                (x86 ? isVectorLineX86(line)
                     : isVectorLineAArch64(line)))
                ++hits;
        }
        std::printf("aot width %2u: %4zu vector lines %s (%s)\n",
                    width, hits, hits ? "vectorized" : "SCALAR (FAIL)",
                    tool.c_str());
        if (hits == 0)
            rc = 1;
    }
    fs::remove_all(cache, ec);
    if (rc)
        std::fprintf(stderr,
                     "check_vectorized --aot: a laned AOT object "
                     "emitted no vector instructions — the laned "
                     "codegen or the SIMD flags regressed\n");
    else if (!skipped)
        std::printf("check_vectorized --aot: OK\n");
    return skipped && !rc ? 77 : rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: check_vectorized "
                             "<libmanticore_simd.a> | --aot\n");
        return 1;
    }
    if (std::strcmp(argv[1], "--aot") == 0)
        return checkAotObjects();
    const std::string archive = argv[1];

    std::string disasm;
    std::string tool;
    for (const char *candidate : {"objdump", "llvm-objdump"}) {
        std::string cmd = std::string(candidate) + " -d '" + archive +
                          "' 2>/dev/null";
        disasm = capture(cmd);
        if (!disasm.empty()) {
            tool = candidate;
            break;
        }
    }
    if (disasm.empty()) {
        std::fprintf(stderr,
                     "check_vectorized: no working objdump/llvm-objdump "
                     "for %s — skipping\n",
                     archive.c_str());
        return 77;
    }

    bool x86 = disasm.find("x86-64") != std::string::npos ||
               disasm.find("i386") != std::string::npos;
    bool arm = disasm.find("aarch64") != std::string::npos ||
               disasm.find("littleaarch64") != std::string::npos;
    if (!x86 && !arm) {
        std::fprintf(stderr, "check_vectorized: unrecognized object "
                             "format (neither x86-64 nor aarch64) — "
                             "skipping\n");
        return 77;
    }

    // Walk the disassembly symbol by symbol, counting vector lines.
    std::map<unsigned, std::set<std::string>> vectorized; // width->kernels
    std::map<unsigned, std::set<std::string>> seen;
    unsigned cur_width = 0;
    std::string cur_kernel;
    size_t pos = 0;
    while (pos < disasm.size()) {
        size_t eol = disasm.find('\n', pos);
        if (eol == std::string::npos)
            eol = disasm.size();
        std::string line = disasm.substr(pos, eol - pos);
        pos = eol + 1;

        std::string kernel;
        if (unsigned w = lanedSymbolWidth(line, kernel)) {
            cur_width = w;
            cur_kernel = kernel;
            seen[w].insert(kernel);
            continue;
        }
        if (line.empty()) { // blank line ends the symbol body
            cur_width = 0;
            continue;
        }
        if (cur_width == 0)
            continue;
        bool vec = x86 ? isVectorLineX86(line) : isVectorLineAArch64(line);
        if (vec)
            vectorized[cur_width].insert(cur_kernel);
    }

    if (seen.empty()) {
        std::fprintf(stderr, "check_vectorized: no laned* symbols in "
                             "%s (wrong archive?)\n",
                     archive.c_str());
        return 1;
    }

    int rc = 0;
    for (auto &[width, kernels] : seen) {
        size_t hits = vectorized[width].size();
        // Width 2 is two 64-bit limbs: scalar pipes may legitimately
        // win, so it is advisory.  The wider instantiations must
        // vectorize somewhere or the SIMD flags regressed.
        bool required = width >= 4;
        const char *verdict =
            hits ? "vectorized" : (required ? "SCALAR (FAIL)" : "scalar (ok)");
        std::printf("width %2u: %2zu/%2zu kernels %s\n", width, hits,
                    kernels.size(), verdict);
        if (required && hits == 0)
            rc = 1;
    }
    if (rc)
        std::fprintf(stderr,
                     "check_vectorized: no vector instructions at a "
                     "required width (disassembled with %s) — the "
                     "laned kernels regressed to scalar code\n",
                     tool.c_str());
    else
        std::printf("check_vectorized: OK (%s, %s)\n", tool.c_str(),
                    x86 ? "x86-64" : "aarch64");
    return rc;
}
