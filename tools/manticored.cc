/**
 * @file
 * manticored: the multi-tenant simulation daemon.
 *
 *   manticored --socket /tmp/manticored.sock [--workers N] ...
 *   manticored --stdio
 *
 * Hosts ONE service::Scheduler — a fixed worker pool time-slicing
 * every tenant session — behind the line protocol in
 * src/service/protocol.hh (unix-domain socket, one service thread per
 * connection, or a single stdio connection for harnesses and
 * debugging).  Stops on SIGINT/SIGTERM or the `shutdown` command;
 * detached sessions die with the daemon, their periodic checkpoints
 * (--checkpoint-every) survive it.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "service/protocol.hh"

using namespace manticore;

namespace {

std::atomic<bool> gStop{false};

void
onSignal(int)
{
    gStop.store(true);
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--socket PATH | --stdio) [options]\n"
        "  --socket PATH        serve a unix-domain socket at PATH\n"
        "  --stdio              serve stdin/stdout as one connection\n"
        "  --workers N          worker-pool size (default: all cores)\n"
        "  --quantum N          cycles per scheduling quantum "
        "(default 4096)\n"
        "  --max-sessions N     admission-control session cap "
        "(default 1024)\n"
        "  --max-queue N        per-session queued-command cap "
        "(default 64)\n"
        "  --checkpoint-dir D   where periodic checkpoints go\n"
        "  --checkpoint-every N checkpoint every N simulated cycles\n"
        "  --save-dir D         confine tenant `save` paths to plain\n"
        "                       filenames under D\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string save_dir;
    bool stdio = false;
    service::SchedulerOptions options;

    auto numArg = [&](int &i, uint64_t *out) -> bool {
        if (i + 1 >= argc)
            return false;
        char *end = nullptr;
        *out = std::strtoull(argv[++i], &end, 10);
        return end && *end == '\0';
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        uint64_t v = 0;
        if (arg == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (arg == "--stdio") {
            stdio = true;
        } else if (arg == "--workers" && numArg(i, &v)) {
            options.numWorkers = static_cast<unsigned>(v);
        } else if (arg == "--quantum" && numArg(i, &v)) {
            options.quantumCycles = v;
        } else if (arg == "--max-sessions" && numArg(i, &v)) {
            options.maxSessions = v;
        } else if (arg == "--max-queue" && numArg(i, &v)) {
            options.maxQueuedPerSession = v;
        } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
            options.checkpointDir = argv[++i];
        } else if (arg == "--checkpoint-every" && numArg(i, &v)) {
            options.checkpointEveryCycles = v;
        } else if (arg == "--save-dir" && i + 1 < argc) {
            save_dir = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }
    if (stdio == !socket_path.empty())
        return usage(argv[0]); // exactly one of --socket / --stdio
    if (options.checkpointEveryCycles != 0 &&
        options.checkpointDir.empty()) {
        std::fprintf(stderr,
                     "--checkpoint-every needs --checkpoint-dir\n");
        return 2;
    }

    // A client vanishing mid-reply must be an EPIPE on the connection
    // thread, not a process-wide SIGPIPE death.
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (!save_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(save_dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "cannot create --save-dir %s: %s\n",
                         save_dir.c_str(), ec.message().c_str());
            return 2;
        }
    }

    service::Scheduler scheduler(options);
    service::Server server(scheduler, &gStop);
    if (!save_dir.empty())
        server.setSaveDir(save_dir);
    if (stdio) {
        server.serveStdio();
        return 0;
    }
    std::fprintf(stderr,
                 "manticored: serving %s with %u worker(s), quantum %llu"
                 "\n",
                 socket_path.c_str(), scheduler.numWorkers(),
                 static_cast<unsigned long long>(
                     scheduler.options().quantumCycles));
    return server.serveUnixSocket(socket_path) ? 0 : 1;
}
