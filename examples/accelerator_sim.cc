/**
 * @file
 * Domain example 1 — simulating an accelerator under development.
 *
 * An architect iterating on a GEMM accelerator (the vta benchmark)
 * wants long self-checking simulations and wants to know what
 * simulation rate to expect before committing to a run.  This example
 * compiles the design, reports the compiler's cycle-exact rate
 * prediction (clock / VCPL, §7.6), runs a functional window on the
 * cycle-level machine with the self-checking driver armed, and prints
 * the performance-counter summary.
 */

#include <cstdio>

#include "designs/designs.hh"
#include "runtime/simulation.hh"

using namespace manticore;

int
main()
{
    constexpr uint64_t kCheckCycles = 3000;
    netlist::Netlist design = designs::buildVta(kCheckCycles);

    compiler::CompileOptions options;
    options.config.gridX = 15;
    options.config.gridY = 15;
    options.config.clockKhz = 475'000.0;

    runtime::Simulation sim(design, options);
    const compiler::CompileResult &cr = sim.compileResult();

    std::printf("vta GEMM accelerator on a 15x15 grid @ 475 MHz\n");
    std::printf("  lowered instructions : %zu\n",
                cr.loweredInstructions);
    std::printf("  processes (cores)    : %zu (of 225)\n",
                cr.program.processes.size());
    std::printf("  VCPL                 : %u machine cycles/RTL cycle\n",
                cr.program.vcpl);
    std::printf("  predicted rate       : %.1f kHz\n",
                cr.simulationRateKhz(options.config.clockKhz));
    std::printf("  compile time         : %.3f s\n", cr.totalSeconds);

    auto status = sim.run(kCheckCycles + 8);
    if (status != isa::RunStatus::Finished) {
        std::printf("simulation FAILED: %s\n",
                    sim.host().failureMessage().c_str());
        return 1;
    }
    for (const std::string &line : sim.displayLog())
        std::printf("  $display: %s\n", line.c_str());

    const machine::PerfCounters &perf = sim.machine().perf();
    std::printf("ran %llu RTL cycles in %llu machine cycles "
                "(%llu stalled); golden checksum verified\n",
                static_cast<unsigned long long>(perf.vcycles),
                static_cast<unsigned long long>(perf.totalCycles()),
                static_cast<unsigned long long>(perf.stallCycles));
    std::printf("effective rate: %.1f kHz\n", sim.effectiveRateKhz());
    return 0;
}
