/**
 * @file
 * Domain example 4 — the compile-once / run-elsewhere path.
 *
 * The compiler emits a self-contained binary image (the artifact the
 * runtime's bootloader streams into the instruction memories, §A.3).
 * This example compiles a design, serialises it, "ships" it, decodes
 * it back, and runs it — the workflow of a simulation farm where
 * compilation and execution hosts differ.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "isa/encode.hh"
#include "machine/machine.hh"
#include "runtime/host.hh"

using namespace manticore;

int
main()
{
    constexpr uint64_t kCheckCycles = 512;
    netlist::Netlist design = designs::buildBc(kCheckCycles);

    compiler::CompileOptions options;
    options.config.gridX = options.config.gridY = 8;
    compiler::CompileResult cr = compiler::compile(design, options);

    std::vector<uint8_t> image = isa::encodeProgram(cr.program);
    std::printf("compiled bc: %zu processes, VCPL %u\n",
                cr.program.processes.size(), cr.program.vcpl);
    std::printf("binary image: %zu bytes (magic \"%c%c%c%c...\")\n",
                image.size(), image[0], image[1], image[2], image[3]);

    // The "remote" side: decode and boot.
    isa::Program loaded = isa::decodeProgram(image);
    machine::Machine mach(loaded, options.config);
    runtime::Host host(loaded, mach.globalMemory());
    host.attach(engine::wrap(mach));

    auto status = mach.run(kCheckCycles + 8);
    if (status != isa::RunStatus::Finished) {
        std::printf("run FAILED: %s\n", host.failureMessage().c_str());
        return 1;
    }
    for (const std::string &line : host.displayLog())
        std::printf("  $display: %s\n", line.c_str());
    std::printf("decoded binary ran to completion; golden checksum "
                "verified on the machine.\n");
    return 0;
}
