/**
 * @file
 * Domain example 2 — using the compiler as a design-space oracle.
 *
 * Because Manticore is deterministic, the compiler's VCPL is the
 * exact number of machine cycles per simulated RTL cycle (§7.6).
 * That makes "how many cores does my design want?" a compile-time
 * question.  This example sweeps grid sizes and both partitioning
 * algorithms for a Monte-Carlo engine and prints the resulting
 * simulation rates, including the FPGA model's achievable clock for
 * each grid — the trade Table 1 + Fig. 7 capture.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "designs/designs.hh"
#include "machine/fpga_model.hh"

using namespace manticore;

int
main()
{
    netlist::Netlist design = designs::buildMcSized(1u << 20, 64);
    machine::FpgaModel fpga;

    std::printf("mc (64 paths): grid sweep with both merge "
                "strategies\n");
    std::printf("%6s %8s | %10s %10s | %10s %10s | %8s\n", "grid",
                "fmax", "B VCPL", "B kHz", "L VCPL", "L kHz", "cores");

    for (unsigned g : {2u, 4u, 6u, 8u, 10u, 12u, 15u}) {
        double mhz = fpga.fmaxMhz(g, g, /*guided=*/true);

        compiler::CompileOptions balanced;
        balanced.config.gridX = balanced.config.gridY = g;
        balanced.enforceImemLimit = false;
        compiler::CompileOptions lpt = balanced;
        lpt.mergeAlgo = compiler::MergeAlgo::Lpt;

        compiler::CompileResult rb = compiler::compile(design, balanced);
        compiler::CompileResult rl = compiler::compile(design, lpt);

        std::printf("%3ux%-3u %6.0fMHz | %10u %10.1f | %10u %10.1f | "
                    "%8zu\n",
                    g, g, mhz, rb.program.vcpl,
                    rb.simulationRateKhz(mhz * 1000.0),
                    rl.program.vcpl,
                    rl.simulationRateKhz(mhz * 1000.0),
                    rb.program.processes.size());
    }
    std::printf("\nReading the table: rate = fmax / VCPL, so beyond "
                "the design's inherent\nparallelism extra cores only "
                "cost clock frequency.\n");
    return 0;
}
