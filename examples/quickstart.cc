/**
 * @file
 * Quickstart: describe a small single-clock RTL design with the
 * CircuitBuilder DSL, compile it for a Manticore grid, and simulate
 * it on the cycle-level machine — the whole flow in ~30 lines.
 *
 * The design is the paper's Listing 2 ("EvenOdd"): a counter that
 * prints whether its value is even or odd each cycle and finishes at
 * 20.
 *
 *   $ ./quickstart
 *   0 is an even number
 *   1 is an odd number
 *   ...
 *   20 is an even number
 *   finished after 21 simulated cycles (VCPL 47, 2 cores used)
 */

#include <cstdio>

#include "netlist/builder.hh"
#include "runtime/simulation.hh"

using namespace manticore;

int
main()
{
    // 1. Describe the design (what the Verilog frontend would emit).
    netlist::CircuitBuilder b("even_odd");
    auto counter = b.reg("counter", 16);
    b.next(counter, counter.read() + b.lit(16, 1));

    netlist::Signal is_even = !counter.read().bit(0);
    b.display(is_even, "%d is an even number", {counter.read()});
    b.display(!is_even, "%d is an odd number", {counter.read()});
    b.finish(counter.read() == b.lit(16, 20));

    // 2. Compile for a 2x2 Manticore grid and boot the machine.
    compiler::CompileOptions options;
    options.config.gridX = 2;
    options.config.gridY = 2;
    runtime::Simulation sim(b.build(), options);

    // 3. Stream $display output as it happens and run.
    sim.host().onDisplay = [](const std::string &line) {
        std::printf("%s\n", line.c_str());
    };
    sim.run(1'000);

    std::printf("finished after %llu simulated cycles "
                "(VCPL %u, %zu cores used)\n",
                static_cast<unsigned long long>(sim.vcycles()),
                sim.compileResult().program.vcpl,
                sim.compileResult().program.processes.size());
    return 0;
}
