/**
 * @file
 * Quickstart: describe a small single-clock RTL design with the
 * CircuitBuilder DSL, then simulate it with the unified engine API —
 * the whole flow in ~30 lines.
 *
 * engine::Session compiles the design for the chosen engine (here
 * "machine", the cycle-level grid model) and wires the host runtime,
 * so $display / $finish work out of the box; swap the engine name for
 * any registry entry — "netlist.compiled", "isa.tape", ... — and the
 * rest of the program is unchanged (engine::list() enumerates them).
 *
 * The design is the paper's Listing 2 ("EvenOdd"): a counter that
 * prints whether its value is even or odd each cycle and finishes at
 * 20.
 *
 *   $ ./quickstart
 *   0 is an even number
 *   1 is an odd number
 *   ...
 *   20 is an even number
 *   finished after 21 simulated cycles (engine machine)
 */

#include <cstdio>

#include "engine/registry.hh"
#include "netlist/builder.hh"

using namespace manticore;

int
main()
{
    // 1. Describe the design (what the Verilog frontend would emit).
    netlist::CircuitBuilder b("even_odd");
    auto counter = b.reg("counter", 16);
    b.next(counter, counter.read() + b.lit(16, 1));

    netlist::Signal is_even = !counter.read().bit(0);
    b.display(is_even, "%d is an even number", {counter.read()});
    b.display(!is_even, "%d is an odd number", {counter.read()});
    b.finish(counter.read() == b.lit(16, 20));

    // 2. Pick an engine by registry name; for the cycle-level machine
    //    the design is compiled for a 2x2 Manticore grid.
    engine::CreateOptions options;
    options.compile.config.gridX = 2;
    options.compile.config.gridY = 2;
    engine::Session sim(b.build(), "machine", options);

    // 3. Stream $display output as it happens and run.
    sim->setDisplaySink([](const std::string &line) {
        std::printf("%s\n", line.c_str());
    });
    sim.run(1'000);

    std::printf("finished after %llu simulated cycles (engine %s)\n",
                static_cast<unsigned long long>(sim->cycle()),
                sim->name());
    return 0;
}
