/**
 * @file
 * Domain example 6 — checkpoint once, explore N futures.
 *
 * A verification engineer wants to sweep stimuli from a deep state
 * without paying the warmup again for every variant.  This example
 * runs one scalar simulation to a checkpoint, save()s it, then
 * forkLanes() the snapshot into an N-lane ensemble where every lane
 * continues the SAME warmed-up state under a different stimulus —
 * one lane runs clean, some get a fault injected, some are frozen.
 * Finally it demonstrates rewinding: restoring the checkpoint on the
 * original engine replays the run deterministically.
 */

#include <cstdio>

#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "runtime/replay.hh"

using namespace manticore;

int
main()
{
    constexpr unsigned kLanes = 8;
    constexpr uint64_t kWarmup = 30;

    // The open-counter fixture: free inputs `stop` and `fault`, and a
    // $finish when the count reaches 200.
    netlist::Netlist design = runtime::buildOpenCtr(16, 200);

    // 1. Warm up one scalar simulation and checkpoint it.
    auto scalar = engine::create("netlist.compiled", design);
    scalar->step(kWarmup);
    engine::Snapshot checkpoint;
    scalar->save(checkpoint);
    std::printf("checkpoint at cycle %llu (%zu bytes, design hash "
                "%016llx)\n",
                static_cast<unsigned long long>(checkpoint.cycle),
                checkpoint.sections[0].size(),
                static_cast<unsigned long long>(
                    checkpoint.designHash));

    // 2. Fork the checkpoint into an 8-lane ensemble with divergent
    //    per-lane stimuli.
    engine::CreateOptions options;
    options.lanes = kLanes;
    auto ensemble =
        engine::create("netlist.parallel", design, options);
    engine::forkLanes(*ensemble, checkpoint, 0,
                      [](engine::Engine &eng, unsigned lane) {
                          if (lane % 3 == 1)
                              engine::driveLane(eng,
                                                eng.bindInput("fault"),
                                                lane, BitVector(1, 1));
                          else if (lane % 3 == 2)
                              engine::driveLane(eng,
                                                eng.bindInput("stop"),
                                                lane, BitVector(1, 1));
                      });
    ensemble->step(400);

    std::printf("\nafter forking into %u lanes and stepping on:\n",
                kLanes);
    for (unsigned l = 0; l < kLanes; ++l)
        std::printf("  lane %u: %-8s at cycle %llu%s\n", l,
                    engine::statusName(ensemble->laneStatus(l)),
                    static_cast<unsigned long long>(
                        ensemble->laneCycle(l)),
                    l % 3 == 1   ? "  (fault injected at fork)"
                    : l % 3 == 2 ? "  (frozen by stop)"
                                 : "  (ran clean to $finish)");

    // 3. Rewind: the original engine restores the checkpoint and
    //    replays deterministically.
    scalar->step(100);
    const uint64_t far = scalar->cycle();
    scalar->restore(checkpoint);
    std::printf("\nrewound scalar engine from cycle %llu back to "
                "%llu; re-running...\n",
                static_cast<unsigned long long>(far),
                static_cast<unsigned long long>(scalar->cycle()));
    scalar->step(100);
    std::printf("deterministic replay reached cycle %llu again: %s\n",
                static_cast<unsigned long long>(scalar->cycle()),
                scalar->cycle() == far ? "ok" : "MISMATCH");
    return scalar->cycle() == far ? 0 : 1;
}
