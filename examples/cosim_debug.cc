/**
 * @file
 * Domain example 3 — co-simulation and state observation through the
 * unified engine API.
 *
 * Every engine exposes RTL registers through the same probe
 * interface (the ISA-level engines reassemble them from the
 * compiler's observation map, the hook behind host-side debugging
 * and the out-of-band waveform collection the paper sketches in §8).
 * That makes differential co-simulation generic: engine::CrossCheck
 * locksteps ANY golden engine against ANY subject.  This example
 * runs the cycle-level machine on the rv32r design cross-checked
 * against BOTH golden models — the compiled netlist evaluator and
 * the flat-tape ISA interpreter — in alternating segments, and
 * prints a small "waveform" of one MiniRV core's pc sampled through
 * a probe handle.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "designs/designs.hh"
#include "engine/crosscheck.hh"
#include "engine/registry.hh"

using namespace manticore;

int
main()
{
    netlist::Netlist design = designs::buildRv32r(1u << 20);

    compiler::CompileOptions options;
    options.config.gridX = options.config.gridY = 6;

    // Compile once; the ISA-level engines share the binary program
    // (the registry's program-level overload), the netlist golden
    // evaluates the design directly.
    compiler::CompileResult cr = compiler::compile(design, options);
    std::vector<engine::RtlSignal> signals =
        engine::rtlSignals(design, cr);

    auto machine =
        engine::create("machine", cr.program, options.config, signals);
    auto isa_golden =
        engine::create("isa.tape", cr.program, options.config, signals);
    auto netlist_golden = engine::create("netlist.compiled", design);

    // One generic harness per golden model; each resynchronises its
    // golden to the machine before comparing, so alternating segments
    // keep a three-way check going.
    engine::CrossCheck vs_netlist(*netlist_golden, *machine);
    engine::CrossCheck vs_isa(*isa_golden, *machine);

    // One-time name resolution; sampling below is string-free.
    engine::ProbeHandle pc3 = machine->probe("pc3");

    std::printf("watching rv32r core 3's pc (probe \"%s\", %u bits) — "
                "machine cross-checked against %s and %s in "
                "alternating 4-cycle segments\n\n",
                machine->probeName(pc3).c_str(),
                machine->probeWidth(pc3), netlist_golden->name(),
                isa_golden->name());

    for (int segment = 0; segment < 10; ++segment) {
        engine::CrossCheck &harness =
            segment % 2 ? vs_isa : vs_netlist;
        engine::RunResult res = harness.run(4);
        if (harness.diverged()) {
            std::printf("DIVERGENCE: %s\n", harness.divergence().c_str());
            return 1;
        }
        if (res.status != engine::Status::Running)
            break;
        unsigned pc = static_cast<unsigned>(
            machine->read(pc3).toUint64());
        std::printf("%5llu: pc=%2u %s\n",
                    static_cast<unsigned long long>(machine->cycle()),
                    pc, std::string(pc, '#').c_str());
    }

    std::printf("\n%llu cycles co-simulated across three engines "
                "(each segment checked against one golden), zero "
                "divergence across %zu paired RTL registers.\n",
                static_cast<unsigned long long>(machine->cycle()),
                vs_netlist.numPairedSignals());
    return 0;
}
