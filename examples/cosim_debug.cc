/**
 * @file
 * Domain example 3 — co-simulation and state observation.
 *
 * The compiler's observation map (CompileResult::regChunkHome) tells
 * the host which core and machine register hold each RTL register's
 * current value — the hook behind host-side debugging and the
 * out-of-band waveform collection the paper sketches as future work
 * (§8).  This example runs the cycle-level machine in lockstep with
 * BOTH golden models — the compiled netlist evaluator and the
 * flat-tape functional ISA interpreter (isa::makeInterpreter) — on
 * the rv32r design, cross-checks a watched register every cycle
 * against each, and prints a small "waveform" of one MiniRV core's
 * pc.
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "designs/designs.hh"
#include "machine/machine.hh"
#include "netlist/evaluator.hh"
#include "runtime/host.hh"

using namespace manticore;

int
main()
{
    netlist::Netlist design = designs::buildRv32r(1u << 20);

    compiler::CompileOptions options;
    options.config.gridX = options.config.gridY = 6;
    compiler::CompileResult cr = compiler::compile(design, options);

    // Golden model 1: the compiled tape evaluator (cycle-exact with
    // the reference Evaluator, ~10x faster; swap the mode to compare).
    auto golden =
        netlist::makeEvaluator(design, netlist::EvalMode::Compiled);
    // Golden model 2: the flat-tape ISA interpreter, running the same
    // binary program as the machine (swap to ExecMode::Reference to
    // compare the engines).
    auto isa_golden = isa::makeInterpreter(cr.program, options.config,
                                           isa::ExecMode::Tape);
    machine::Machine mach(cr.program, options.config);
    runtime::Host host(cr.program, mach.globalMemory());
    host.attach(mach);
    runtime::Host isa_host(cr.program, isa_golden->globalMemory());
    isa_host.attach(*isa_golden);

    // Find the watched register by name.
    int watched = -1;
    for (size_t r = 0; r < design.numRegisters(); ++r)
        if (design.reg(static_cast<uint32_t>(r)).name == "pc3")
            watched = static_cast<int>(r);
    if (watched < 0) {
        std::printf("register pc3 not found\n");
        return 1;
    }
    const auto &home = cr.regChunkHome[watched][0];
    std::printf("watching rv32r core 3's pc: lives on core %u "
                "(machine register $r%u)\n\n",
                home.process, home.reg);

    std::printf("cycle: pc3 waveform (machine == evaluator == ISA "
                "interpreter checked every cycle)\n");
    for (int cycle = 0; cycle < 40; ++cycle) {
        golden->step();
        isa_golden->stepVcycle();
        mach.runVcycle();
        uint16_t hw = mach.regValue(home.process, home.reg);
        uint16_t ref = static_cast<uint16_t>(
            golden->regValue(static_cast<uint32_t>(watched)).toUint64());
        uint16_t tape = isa_golden->regValue(home.process, home.reg);
        if (hw != ref || hw != tape) {
            std::printf("DIVERGENCE at cycle %d: machine %u vs "
                        "evaluator %u vs ISA interpreter %u\n",
                        cycle, hw, ref, tape);
            return 1;
        }
        if (cycle % 4 == 0)
            std::printf("%5d: pc=%2u %s\n", cycle, hw,
                        std::string(hw, '#').c_str());
    }
    std::printf("\n40 cycles co-simulated across three engines, zero "
                "divergence across %zu RTL registers' homes.\n",
                cr.regChunkHome.size());
    return 0;
}
