/**
 * @file
 * Compiler pass unit tests: lowering structure, optimisation effects,
 * partitioning invariants (memory/privilege anchoring, duplication),
 * CFU synthesis statistics, scheduling contracts (hazard distances,
 * imem bounds), and register allocation (coalescing, capacity).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "runtime/host.hh"
#include "support/rng.hh"

using namespace manticore;
using compiler::CompileOptions;
using compiler::CompileResult;
using isa::Opcode;

namespace {

netlist::Netlist
chainOfLogic()
{
    // Long AND/OR/XOR chain: prime CFU-synthesis territory.
    netlist::CircuitBuilder b("logic");
    auto a = b.reg("a", 16, 0x1111);
    auto c = b.reg("c", 16, 0x2222);
    auto d = b.reg("d", 16, 0x3333);
    auto e = b.reg("e", 16, 0x4444);
    // The picoRV32 expression from §4.2:
    // (a & 0xf) | b | (c & 0x3) | (d ^ 0x1)
    netlist::Signal expr = (a.read() & b.lit(16, 0xf)) | c.read() |
                           (d.read() & b.lit(16, 3)) |
                           (e.read() ^ b.lit(16, 1));
    auto out = b.reg("out", 16);
    b.next(out, expr);
    b.next(a, a.read() ^ out.read());
    b.next(c, c.read() | out.read());
    b.next(d, d.read() & out.read());
    b.next(e, e.read() + b.lit(16, 1));
    return b.build();
}

} // namespace

TEST(CompilerOpt, FoldsConstantsAndRemovesDeadCode)
{
    netlist::CircuitBuilder b("opt");
    auto r = b.reg("r", 16);
    // (1 + 2) * r is live; an unused sub-expression is dead.
    netlist::Signal live = (b.lit(16, 1) + b.lit(16, 2)) * r.read();
    (void)(r.read() - b.lit(16, 5)); // dead
    b.next(r, live);
    netlist::Netlist nl = b.build();

    compiler::LoweredProgram lowered = compiler::lower(nl);
    size_t before = lowered.body.size();
    compiler::OptStats stats = compiler::optimize(lowered);
    EXPECT_GT(stats.folded, 0u);
    EXPECT_GT(stats.deadRemoved, 0u);
    EXPECT_LT(lowered.body.size(), before);
    // The add of two constants must be gone entirely.
    for (const auto &inst : lowered.body)
        EXPECT_NE(inst.opcode, Opcode::Sub);
}

TEST(CompilerOpt, CseMergesIdenticalExpressions)
{
    netlist::CircuitBuilder b("cse");
    auto r = b.reg("r", 16, 1);
    auto s = b.reg("s", 16, 2);
    // The same expression feeds two registers.
    b.next(r, (r.read() ^ s.read()) + s.read());
    b.next(s, (r.read() ^ s.read()) + s.read());
    netlist::Netlist nl = b.build();
    compiler::LoweredProgram lowered = compiler::lower(nl);
    compiler::OptStats stats = compiler::optimize(lowered);
    EXPECT_GT(stats.csed, 0u);
}

TEST(CompilerPartition, SameMemoryInstructionsStayTogether)
{
    netlist::CircuitBuilder b("memanchor");
    auto mem = b.memory("m", 16, 16);
    auto p = b.reg("p", 16);
    auto q = b.reg("q", 16);
    // Two independent registers both read the memory.
    b.next(p, p.read() + mem.read(p.read().trunc(4)));
    b.next(q, q.read() ^ mem.read(q.read().trunc(4)));
    mem.write(p.read().trunc(4), q.read(), b.lit(1, 1));
    netlist::Netlist nl = b.build();

    compiler::LoweredProgram lowered = compiler::lower(nl);
    compiler::optimize(lowered);
    compiler::Partition part =
        compiler::partition(lowered, 16, compiler::MergeAlgo::Balanced);

    // Every instruction tagged with the memory must be in exactly one
    // process.
    int mem_proc = -1;
    for (size_t pr = 0; pr < part.processes.size(); ++pr) {
        for (uint32_t idx : part.processes[pr]) {
            if (lowered.memGroup[idx] >= 0) {
                if (mem_proc == -1)
                    mem_proc = static_cast<int>(pr);
                EXPECT_EQ(mem_proc, static_cast<int>(pr))
                    << "memory instructions split across processes";
            }
        }
    }
    EXPECT_NE(mem_proc, -1);
}

TEST(CompilerPartition, PrivilegedInstructionsSingleProcess)
{
    netlist::Netlist nl = designs::buildCgra(32);
    compiler::LoweredProgram lowered = compiler::lower(nl);
    compiler::optimize(lowered);
    compiler::Partition part =
        compiler::partition(lowered, 64, compiler::MergeAlgo::Balanced);
    ASSERT_GE(part.privileged, 0);
    for (size_t pr = 0; pr < part.processes.size(); ++pr) {
        for (uint32_t idx : part.processes[pr]) {
            if (lowered.privileged[idx])
                EXPECT_EQ(static_cast<int>(pr), part.privileged);
        }
    }
}

TEST(CompilerPartition, RespectsCoreBudget)
{
    netlist::Netlist nl = designs::buildMc(32);
    compiler::LoweredProgram lowered = compiler::lower(nl);
    compiler::optimize(lowered);
    for (unsigned cores : {1u, 2u, 4u, 9u, 100u}) {
        compiler::Partition part = compiler::partition(
            lowered, cores, compiler::MergeAlgo::Balanced);
        EXPECT_LE(part.processes.size(), cores);
        compiler::Partition lpt =
            compiler::partition(lowered, cores, compiler::MergeAlgo::Lpt);
        EXPECT_LE(lpt.processes.size(), cores);
    }
}

TEST(CompilerPartition, BalancedSendsFewerThanLpt)
{
    // The headline claim of §7.8.1 (Table 4): communication-aware
    // merging sends less.
    netlist::Netlist nl = designs::buildMc(32);
    compiler::LoweredProgram lowered = compiler::lower(nl);
    compiler::optimize(lowered);
    auto bal =
        compiler::partition(lowered, 64, compiler::MergeAlgo::Balanced);
    auto lpt = compiler::partition(lowered, 64, compiler::MergeAlgo::Lpt);
    EXPECT_LE(bal.stats.estimatedSends, lpt.stats.estimatedSends);
}

TEST(CompilerCfu, FusesThePaperExpression)
{
    netlist::Netlist nl = chainOfLogic();
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    CompileResult result = compiler::compile(nl, opts);
    EXPECT_GT(result.cfu.selected, 0u);
    EXPECT_GT(result.cfu.instructionsRemoved, 0u);
    bool has_cust = false;
    for (const auto &proc : result.program.processes)
        for (const auto &inst : proc.body)
            has_cust |= inst.opcode == Opcode::Cust;
    EXPECT_TRUE(has_cust);
}

TEST(CompilerCfu, DisableProducesNoCust)
{
    netlist::Netlist nl = chainOfLogic();
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    opts.enableCustomFunctions = false;
    CompileResult result = compiler::compile(nl, opts);
    for (const auto &proc : result.program.processes) {
        EXPECT_TRUE(proc.functions.empty());
        for (const auto &inst : proc.body)
            EXPECT_NE(inst.opcode, Opcode::Cust);
    }
}

TEST(CompilerCfu, ReducesVcpl)
{
    netlist::Netlist nl = designs::buildBc(32);
    CompileOptions with;
    with.config.gridX = with.config.gridY = 4;
    CompileOptions without = with;
    without.enableCustomFunctions = false;
    unsigned v_with = compiler::compile(nl, with).program.vcpl;
    unsigned v_without = compiler::compile(nl, without).program.vcpl;
    EXPECT_LE(v_with, v_without);
}

TEST(CompilerSchedule, HazardContractHolds)
{
    // Post-regalloc static check: any instruction reading a register
    // written earlier in the same body must be at least
    // pipelineLatency slots later (persistent boot registers excepted
    // because their readers precede their writers by construction,
    // checked via the WAR ordering instead).
    netlist::Netlist nl = designs::buildCgra(32);
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 4;
    CompileResult result = compiler::compile(nl, opts);
    unsigned lat = opts.config.pipelineLatency;

    for (const auto &proc : result.program.processes) {
        std::unordered_map<isa::Reg, size_t> last_write;
        for (size_t slot = 0; slot < proc.body.size(); ++slot) {
            const auto &inst = proc.body[slot];
            for (isa::Reg s : inst.sources()) {
                auto it = last_write.find(s);
                if (it == last_write.end())
                    continue;
                bool is_boot = proc.init.count(s) != 0;
                if (is_boot)
                    continue; // current-value WAR handled separately
                EXPECT_GE(slot, it->second + lat)
                    << "hazard violation in process " << proc.id
                    << " slot " << slot << ": "
                    << inst.toString();
            }
            if (inst.destination() != isa::kNoReg &&
                inst.opcode != isa::Opcode::Send)
                last_write[inst.destination()] = slot;
        }
    }
}

TEST(CompilerSchedule, BodiesFitInstructionMemory)
{
    netlist::Netlist nl = designs::buildMm(16);
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    CompileResult result = compiler::compile(nl, opts);
    for (const auto &proc : result.program.processes)
        EXPECT_LE(proc.body.size() + proc.epilogueLength,
                  opts.config.imemSize);
    EXPECT_GE(result.program.vcpl, result.schedule.maxBodyLength);
}

TEST(CompilerSchedule, MoreCoresDoNotIncreaseVcplMuch)
{
    // Scaling sanity (Fig. 7 flavor): mc on 16 cores should beat mc
    // on 1 core by a wide margin.
    netlist::Netlist nl = designs::buildMc(16);
    CompileOptions one;
    one.config.gridX = one.config.gridY = 1;
    CompileOptions many;
    many.config.gridX = many.config.gridY = 4;
    unsigned v1 = compiler::compile(nl, one).program.vcpl;
    unsigned v16 = compiler::compile(nl, many).program.vcpl;
    EXPECT_LT(v16, v1);
    EXPECT_GT(static_cast<double>(v1) / v16, 2.0);
}

TEST(CompilerRegalloc, CoalescesMovs)
{
    netlist::Netlist nl = designs::buildCgra(16);
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    CompileResult result = compiler::compile(nl, opts);
    EXPECT_GT(result.regalloc.coalescedMovs, 0u);
    EXPECT_LE(result.regalloc.maxMachineRegs,
              opts.config.regFileSize);
}

TEST(CompilerEndToEnd, RegChunkHomeTracksCounter)
{
    netlist::CircuitBuilder b("wide_counter");
    auto c = b.reg("c", 40);
    b.next(c, c.read() + b.lit(40, 1));
    b.finish(b.lit(1, 0));
    netlist::Netlist nl = b.build();

    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    CompileResult result = compiler::compile(nl, opts);
    ASSERT_EQ(result.regChunkHome.size(), 1u);
    EXPECT_EQ(result.regChunkHome[0].size(), 3u); // 40 bits = 3 chunks
}

TEST(CompilerDeterminism, SameInputSameBinary)
{
    // A static-scheduling compiler must be bit-reproducible: the
    // schedule *is* the correctness argument.
    netlist::Netlist nl1 = designs::buildNoc(64);
    netlist::Netlist nl2 = designs::buildNoc(64);
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 5;
    CompileResult a = compiler::compile(nl1, opts);
    CompileResult b = compiler::compile(nl2, opts);
    ASSERT_EQ(a.program.processes.size(), b.program.processes.size());
    EXPECT_EQ(a.program.vcpl, b.program.vcpl);
    for (size_t p = 0; p < a.program.processes.size(); ++p) {
        const auto &pa = a.program.processes[p];
        const auto &pb = b.program.processes[p];
        ASSERT_EQ(pa.body.size(), pb.body.size()) << "process " << p;
        for (size_t i = 0; i < pa.body.size(); ++i)
            ASSERT_EQ(pa.body[i].toString(), pb.body[i].toString())
                << "process " << p << " slot " << i;
        EXPECT_EQ(pa.init, pb.init);
        EXPECT_EQ(pa.epilogueLength, pb.epilogueLength);
    }
}

TEST(CompilerConfig, NonSquareGridsWork)
{
    netlist::Netlist nl = designs::buildCgra(48);
    for (auto [gx, gy] : {std::pair<unsigned, unsigned>{1, 8},
                          {8, 1},
                          {3, 7}}) {
        CompileOptions opts;
        opts.config.gridX = gx;
        opts.config.gridY = gy;
        CompileResult result = compiler::compile(nl, opts);
        machine::Machine m(result.program, opts.config);
        runtime::Host host(result.program, m.globalMemory());
        host.attach(engine::wrap(m));
        EXPECT_EQ(m.run(64), isa::RunStatus::Finished)
            << gx << "x" << gy << ": " << host.failureMessage();
    }
}

TEST(CompilerConfig, TinyImemRejectedUnlessPredicting)
{
    netlist::Netlist nl = designs::buildMm(16);
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    opts.config.imemSize = 64; // far too small for the whole design
    EXPECT_DEATH(compiler::compile(nl, opts), "instruction slots");
    opts.enforceImemLimit = false;
    CompileResult result = compiler::compile(nl, opts);
    EXPECT_GT(result.program.vcpl, 64u); // prediction still produced
}

TEST(CompilerConfig, OptimizationsOffStillCorrect)
{
    netlist::Netlist nl = designs::buildBlur(48);
    CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    opts.enableOptimizations = false;
    CompileResult result = compiler::compile(nl, opts);
    machine::Machine m(result.program, opts.config);
    runtime::Host host(result.program, m.globalMemory());
    host.attach(engine::wrap(m));
    EXPECT_EQ(m.run(64), isa::RunStatus::Finished)
        << host.failureMessage();
}
