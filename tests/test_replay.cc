/**
 * @file
 * Replay-artifact tests: the text format round-trips byte-exactly and
 * rejects malformed input loudly; every checked-in artifact in
 * tests/replay_corpus/ reproduces on every engine that can run it
 * (skips are legitimate — no ensemble mode, no free inputs — but a
 * PASS count floor keeps the corpus from silently rotting into
 * all-skips); and a forced engine divergence through CrossCheck /
 * EnsembleCrossCheck writes an artifact that reproduces the identical
 * failing cycle, status, and probe digest on freshly created engines.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "runtime/replay.hh"
#include "tests/random_circuit.hh"

using namespace manticore;
using runtime::ReplayTrace;

namespace {

netlist::Netlist
rebuild(const ReplayTrace &trace)
{
    return runtime::buildReplayDesign(trace, [](uint64_t seed) {
        return manticore::testing::RandomCircuit(seed).build();
    });
}

/** Artifact path from a divergence message that names one. */
std::string
artifactPathIn(const std::string &divergence)
{
    const std::string marker = "replay artifact: ";
    size_t pos = divergence.find(marker);
    if (pos == std::string::npos)
        return {};
    return divergence.substr(pos + marker.size());
}

} // namespace

// ---------------------------------------------------------------------------
// Format
// ---------------------------------------------------------------------------

TEST(ReplayFormat, SerializeParseRoundTripsByteExact)
{
    ReplayTrace t;
    t.designKind = "openctr";
    t.designArg = "8";
    t.designParam = 40;
    t.designHash = 0x1f2e3d4c5b6a7988ull;
    t.engine = "netlist.parallel";
    t.lanes = 2;
    t.notes.push_back("lane 1 cycle 40: something diverged");
    t.pokes.push_back({7, 1, "stop", BitVector(1, 1)});
    t.pokes.push_back({3, 0, "fault", BitVector(1, 0)});
    t.runCycles = 64;
    t.expectations.push_back(
        {0, engine::Status::Finished, 41, 0x9c0ffeeull});
    t.expectations.push_back(
        {1, engine::Status::Failed, 40, 0xabad1deaull});

    const std::string text = t.serialize();
    ReplayTrace parsed = ReplayTrace::parse(text);
    // Pokes are sorted by cycle on parse, so a reserialize of the
    // parsed trace is the canonical byte-exact form.
    const std::string canonical = parsed.serialize();
    EXPECT_EQ(ReplayTrace::parse(canonical).serialize(), canonical);
    EXPECT_EQ(parsed.designKind, "openctr");
    EXPECT_EQ(parsed.designHash, t.designHash);
    EXPECT_EQ(parsed.lanes, 2u);
    ASSERT_EQ(parsed.pokes.size(), 2u);
    EXPECT_EQ(parsed.pokes[0].cycle, 3u); // sorted
    ASSERT_EQ(parsed.expectations.size(), 2u);
    EXPECT_EQ(parsed.expectations[1].status, engine::Status::Failed);
    EXPECT_EQ(parsed.expectations[1].digest, 0xabad1deaull);
}

TEST(ReplayFormatDeathTest, MalformedInputFatalsWithLineNumber)
{
    EXPECT_EXIT(ReplayTrace::parse("manticore-replay v1\n"
                                   "bogus directive\nend\n"),
                ::testing::ExitedWithCode(1), "replay: line 2");
    EXPECT_EXIT(ReplayTrace::parse("not a replay file\n"),
                ::testing::ExitedWithCode(1),
                "expected \"manticore-replay v1\"");
    EXPECT_EXIT(ReplayTrace::parse("manticore-replay v1\n"
                                   "design builtin mm 96\n"),
                ::testing::ExitedWithCode(1), "truncated");
}

// ---------------------------------------------------------------------------
// The checked-in corpus reproduces everywhere
// ---------------------------------------------------------------------------

TEST(ReplayCorpus, EveryArtifactReplaysOnEveryRunnableEngine)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(MANTICORE_SOURCE_DIR) / "tests" / "replay_corpus";
    ASSERT_TRUE(fs::is_directory(dir))
        << dir << " missing (regenerate with make_replay_corpus)";

    unsigned artifacts = 0, passes = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".replay")
            continue;
        SCOPED_TRACE(entry.path().filename().string());
        ++artifacts;
        ReplayTrace trace =
            ReplayTrace::load(entry.path().string());
        netlist::Netlist nl = rebuild(trace);
        for (const engine::EngineInfo &info : engine::list()) {
            SCOPED_TRACE(info.name);
            runtime::ReplayResult r =
                runtime::replayOn(trace, nl, info.name);
            if (!r.ran)
                continue;
            EXPECT_TRUE(r.passed) << r.detail;
            passes += r.passed;
        }
    }
    // The seeded corpus: finish x2, assert-failure, per-lane
    // divergent terminations, mid-flight running.
    EXPECT_GE(artifacts, 5u);
    // Floor on actual reproductions so pervasive SKIPs can't pass.
    EXPECT_GE(passes, 15u);
}

// ---------------------------------------------------------------------------
// Forced divergence => artifact => byte-exact reproduction
// ---------------------------------------------------------------------------

TEST(ReplayRecorder, CrossCheckDivergenceReproducesInFreshEngines)
{
    netlist::Netlist nl = runtime::buildOpenCtr(8, 40);
    auto golden = engine::create("netlist.reference", nl);
    auto subject = engine::create("netlist.compiled", nl);

    runtime::ReplayRecorder recorder;
    recorder.trace.designKind = "openctr";
    recorder.trace.designArg = "8";
    recorder.trace.designParam = 40;
    recorder.trace.designHash = engine::designHash(nl);
    recorder.signals = runtime::probeSignals(nl);
    recorder.dir = ::testing::TempDir() + "manticore-replay-test";
    recorder.stem = "forced";

    engine::CrossCheck cc(*golden, *subject);
    cc.setRecorder(&recorder);
    cc.run(10);
    ASSERT_FALSE(cc.diverged());

    // Subject-only fault: the engines genuinely diverge (the golden
    // keeps counting, the subject fails its assertion).
    subject->setInput(subject->bindInput("fault"), BitVector(1, 1));
    cc.run(5);
    ASSERT_TRUE(cc.diverged());

    const std::string path = artifactPathIn(cc.divergence());
    ASSERT_FALSE(path.empty())
        << "divergence message must name the artifact: "
        << cc.divergence();

    // The artifact pins the golden's terminal exactly.
    ReplayTrace trace = ReplayTrace::load(path);
    ASSERT_EQ(trace.expectations.size(), 1u);
    EXPECT_EQ(trace.expectations[0].status, golden->status());
    EXPECT_EQ(trace.expectations[0].cycle, golden->cycle());
    EXPECT_EQ(trace.expectations[0].digest,
              runtime::probeDigest(*golden, 0, recorder.signals));

    // Fresh engines (a stand-in for a fresh process — state is
    // rebuilt from the artifact alone) reproduce cycle, status, and
    // digest byte-exactly.
    netlist::Netlist rebuilt = rebuild(trace);
    EXPECT_EQ(engine::designHash(rebuilt), trace.designHash);
    unsigned ran = 0;
    for (const engine::EngineInfo &info : engine::list()) {
        SCOPED_TRACE(info.name);
        runtime::ReplayResult r =
            runtime::replayOn(trace, rebuilt, info.name);
        if (!r.ran)
            continue;
        ++ran;
        EXPECT_TRUE(r.passed) << r.detail;
    }
    EXPECT_GE(ran, 4u); // all four netlist engines have free inputs
}

TEST(ReplayRecorder, EnsembleDivergenceReproducesInFreshEngines)
{
    netlist::Netlist nl = runtime::buildOpenCtr(8, 40);
    engine::CreateOptions options;
    options.lanes = 2;
    auto subject = engine::create("netlist.compiled", nl, options);
    auto golden0 = engine::create("netlist.reference", nl);
    auto golden1 = engine::create("netlist.reference", nl);
    std::vector<engine::Engine *> goldens = {golden0.get(),
                                             golden1.get()};

    runtime::ReplayRecorder recorder;
    recorder.trace.designKind = "openctr";
    recorder.trace.designArg = "8";
    recorder.trace.designParam = 40;
    recorder.trace.designHash = engine::designHash(nl);
    recorder.signals = runtime::probeSignals(nl);
    recorder.dir = ::testing::TempDir() + "manticore-replay-test";
    recorder.stem = "forced-ensemble";

    engine::EnsembleCrossCheck cc(goldens, *subject);
    cc.setRecorder(&recorder);
    cc.run(8);
    ASSERT_FALSE(cc.diverged());

    // Fault lane 1 of the subject only; its golden disagrees.
    subject->setInputLane(subject->bindInput("fault"), 1,
                          BitVector(1, 1));
    cc.run(5);
    ASSERT_TRUE(cc.diverged());

    const std::string path = artifactPathIn(cc.divergence());
    ASSERT_FALSE(path.empty()) << cc.divergence();
    ReplayTrace trace = ReplayTrace::load(path);
    EXPECT_EQ(trace.lanes, 2u);
    ASSERT_EQ(trace.expectations.size(), 2u);

    netlist::Netlist rebuilt = rebuild(trace);
    for (const char *name : {"netlist.compiled", "netlist.parallel"}) {
        SCOPED_TRACE(name);
        runtime::ReplayResult r =
            runtime::replayOn(trace, rebuilt, name);
        ASSERT_TRUE(r.ran) << r.skipReason;
        EXPECT_TRUE(r.passed) << r.detail;
    }
}
