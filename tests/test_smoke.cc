/**
 * @file
 * End-to-end smoke tests: the paper's Listing 2 EvenOdd example
 * compiled and run on all three engines, and a benchmark design
 * through the full pipeline.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "isa/interpreter.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"
#include "runtime/host.hh"
#include "runtime/simulation.hh"

using namespace manticore;

namespace {

/** The paper's Listing 2: counts, prints even/odd, finishes at 20. */
netlist::Netlist
evenOdd()
{
    netlist::CircuitBuilder b("even_odd");
    auto counter = b.reg("counter", 16);
    b.next(counter, counter.read() + b.lit(16, 1));
    netlist::Signal is_even = !counter.read().bit(0);
    b.display(is_even, "%d is an even number", {counter.read()});
    b.display(!is_even, "%d is an odd number", {counter.read()});
    b.finish(counter.read() == b.lit(16, 20));
    return b.build();
}

} // namespace

TEST(Smoke, EvenOddOnEvaluator)
{
    netlist::Netlist nl = evenOdd();
    netlist::Evaluator eval(nl);
    auto status = eval.run(100);
    EXPECT_EQ(status, netlist::SimStatus::Finished);
    EXPECT_EQ(eval.cycle(), 21u);
    ASSERT_EQ(eval.displayLog().size(), 21u);
    EXPECT_EQ(eval.displayLog()[0], "0 is an even number");
    EXPECT_EQ(eval.displayLog()[1], "1 is an odd number");
    EXPECT_EQ(eval.displayLog()[20], "20 is an even number");
}

TEST(Smoke, EvenOddCompiledOnInterpreterAndMachine)
{
    netlist::Netlist nl = evenOdd();
    compiler::CompileOptions opts;
    opts.config.gridX = 2;
    opts.config.gridY = 2;
    compiler::CompileResult result = compiler::compile(nl, opts);
    EXPECT_GT(result.program.vcpl, 0u);

    // Functional ISA interpreter.
    {
        isa::Interpreter interp(result.program, opts.config);
        runtime::Host host(result.program, interp.globalMemory());
        host.attach(engine::wrap(interp));
        auto status = interp.run(100);
        EXPECT_EQ(status, isa::RunStatus::Finished);
        ASSERT_EQ(host.displayLog().size(), 21u);
        EXPECT_EQ(host.displayLog()[0], "0 is an even number");
        EXPECT_EQ(host.displayLog()[20], "20 is an even number");
    }

    // Cycle-level machine.
    {
        machine::Machine m(result.program, opts.config);
        runtime::Host host(result.program, m.globalMemory());
        host.attach(engine::wrap(m));
        auto status = m.run(100);
        EXPECT_EQ(status, isa::RunStatus::Finished);
        ASSERT_EQ(host.displayLog().size(), 21u);
        EXPECT_EQ(host.displayLog()[20], "20 is an even number");
        EXPECT_EQ(m.perf().vcycles, 21u);
    }
}

TEST(Smoke, BlurBenchmarkEndToEnd)
{
    netlist::Netlist nl = designs::buildBlur(64);

    // Reference evaluator passes its own golden assertion.
    netlist::Evaluator eval(nl);
    EXPECT_EQ(eval.run(200), netlist::SimStatus::Finished);

    // Full pipeline on a small grid.
    compiler::CompileOptions opts;
    opts.config.gridX = 4;
    opts.config.gridY = 4;
    runtime::Simulation sim(nl, opts);
    EXPECT_EQ(sim.run(200), isa::RunStatus::Finished);
    ASSERT_FALSE(sim.displayLog().empty());
}
