/**
 * @file
 * Generic CrossCheck harness tests: a seeded divergence — two
 * almost-identical designs whose register `x` drifts apart at a
 * known cycle — must be caught for EVERY (golden, subject) engine
 * pairing, and the mismatch report must name the first diverging
 * cycle and signal.  Status disagreements (one side fails an
 * assertion) and agreement-on-failure are covered too.
 */

#include <gtest/gtest.h>

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "isa/interpreter.hh"
#include "netlist/builder.hh"

using namespace manticore;

namespace {

/** The pairing matrix is generated from the registry, filtered to the
 *  engines runnable on this host, so a newly registered engine is
 *  cross-checked against every other for free (7 engines = 49
 *  pairings when the AOT toolchain probe succeeds). */
std::vector<std::string>
availableEngines()
{
    std::vector<std::string> names;
    for (const engine::EngineInfo &info : engine::list())
        if (info.available)
            names.push_back(info.name);
    return names;
}

const std::vector<std::string> kAllEngines = availableEngines();

constexpr uint64_t kDivergeAt = 5; ///< cyc value that seeds the drift

/** A counter design whose register x gains +1 per cycle — or, when
 *  `seed_divergence`, +2 exactly once (the cycle cyc == kDivergeAt),
 *  so x first differs after commit cycle kDivergeAt + 1. */
netlist::Netlist
seededDesign(bool seed_divergence)
{
    netlist::CircuitBuilder b("seeded");
    auto cyc = b.reg("cyc", 16);
    b.next(cyc, cyc.read() + b.lit(16, 1));
    auto x = b.reg("x", 16);
    netlist::Signal bump =
        seed_divergence
            ? b.mux(cyc.read() == b.lit(16, kDivergeAt), b.lit(16, 2),
                    b.lit(16, 1))
            : b.lit(16, 1);
    b.next(x, x.read() + bump);
    b.finish(cyc.read() == b.lit(16, 100));
    return b.build();
}

netlist::Netlist
assertingDesign(uint64_t fail_at)
{
    netlist::CircuitBuilder b("seeded");
    auto cyc = b.reg("cyc", 16);
    b.next(cyc, cyc.read() + b.lit(16, 1));
    auto x = b.reg("x", 16);
    b.next(x, x.read() + b.lit(16, 1));
    b.assertAlways(b.lit(1, 1), cyc.read() < b.lit(16, fail_at),
                   "cyc escaped");
    b.finish(cyc.read() == b.lit(16, 100));
    return b.build();
}

engine::CreateOptions
smallGrid()
{
    engine::CreateOptions options;
    options.compile.config.gridX = options.compile.config.gridY = 2;
    options.eval.numThreads = 2;
    return options;
}

} // namespace

TEST(CrossCheck, SeededDivergenceReportsCycleAndSignalForEveryPairing)
{
    netlist::Netlist clean = seededDesign(false);
    netlist::Netlist drifting = seededDesign(true);
    const std::string expected_cycle =
        "cycle " + std::to_string(kDivergeAt + 1);

    for (const std::string &golden_name : kAllEngines) {
        for (const std::string &subject_name : kAllEngines) {
            SCOPED_TRACE(golden_name + " vs " + subject_name);
            auto golden =
                engine::create(golden_name, clean, smallGrid());
            auto subject =
                engine::create(subject_name, drifting, smallGrid());
            engine::CrossCheck cc(*golden, *subject);
            EXPECT_EQ(cc.numPairedSignals(), 2u);

            engine::RunResult res = cc.run(50);
            EXPECT_EQ(res.status, engine::Status::Failed);
            ASSERT_TRUE(cc.diverged());
            // The report names the first diverging cycle and signal.
            EXPECT_NE(cc.divergence().find(expected_cycle),
                      std::string::npos)
                << cc.divergence();
            EXPECT_NE(cc.divergence().find("signal x"),
                      std::string::npos)
                << cc.divergence();
            // ... and stops at it: the clean register never drifts,
            // so the run ended exactly when x first differed.
            EXPECT_EQ(res.cycles, kDivergeAt + 1);
        }
    }
}

TEST(CrossCheck, IdenticalDesignsAgreeForEveryPairing)
{
    netlist::Netlist clean = seededDesign(false);
    for (const std::string &golden_name : kAllEngines) {
        for (const std::string &subject_name : kAllEngines) {
            SCOPED_TRACE(golden_name + " vs " + subject_name);
            auto golden =
                engine::create(golden_name, clean, smallGrid());
            auto subject =
                engine::create(subject_name, clean, smallGrid());
            engine::CrossCheck cc(*golden, *subject);
            engine::RunResult res = cc.run(200);
            EXPECT_EQ(res.status, engine::Status::Finished)
                << cc.divergence();
            EXPECT_FALSE(cc.diverged()) << cc.divergence();
        }
    }
}

TEST(CrossCheck, StatusDisagreementIsReported)
{
    // The subject fails an assertion the golden design does not have:
    // a status divergence naming both engines and the failure.
    auto golden = engine::create("netlist.compiled", seededDesign(false));
    auto subject =
        engine::create("netlist.reference", assertingDesign(10));
    engine::CrossCheck cc(*golden, *subject);
    engine::RunResult res = cc.run(50);
    EXPECT_EQ(res.status, engine::Status::Failed);
    ASSERT_TRUE(cc.diverged());
    EXPECT_NE(cc.divergence().find("status failed"), std::string::npos)
        << cc.divergence();
    EXPECT_NE(cc.divergence().find("status running"), std::string::npos)
        << cc.divergence();
    EXPECT_NE(cc.divergence().find("cyc escaped"), std::string::npos)
        << cc.divergence();
}

TEST(CrossCheck, AgreedFailureIsNotDivergence)
{
    // Both engines fail the same assertion at the same cycle: that is
    // agreement (Failed status, empty divergence).
    netlist::Netlist design = assertingDesign(10);
    auto golden = engine::create("netlist.reference", design);
    auto subject = engine::create("netlist.parallel", design,
                                  smallGrid());
    engine::CrossCheck cc(*golden, *subject);
    engine::RunResult res = cc.run(50);
    EXPECT_EQ(res.status, engine::Status::Failed);
    EXPECT_FALSE(cc.diverged()) << cc.divergence();
}

TEST(CrossCheck, ResyncsALaggingGolden)
{
    // Advancing the subject alone first must not produce a phantom
    // divergence: the harness steps the laggard up before comparing.
    netlist::Netlist design = seededDesign(false);
    auto golden = engine::create("netlist.reference", design);
    auto subject = engine::create("netlist.compiled", design);
    subject->step(7);
    engine::CrossCheck cc(*golden, *subject);
    engine::RunResult res = cc.run(10);
    EXPECT_EQ(res.status, engine::Status::Running);
    EXPECT_FALSE(cc.diverged()) << cc.divergence();
    EXPECT_EQ(golden->cycle(), subject->cycle());
    EXPECT_EQ(subject->cycle(), 17u);
}

TEST(CrossCheck, RefusesEnginesWithoutCommonSignals)
{
    netlist::Netlist design = seededDesign(false);
    compiler::CompileOptions copts;
    copts.config.gridX = copts.config.gridY = 2;
    compiler::CompileResult cr = compiler::compile(design, copts);
    auto interp = isa::makeInterpreter(cr.program, copts.config,
                                       isa::ExecMode::Tape);
    // A borrowed interpreter without a signal table has no probes.
    engine::IsaEngine probeless = engine::wrap(*interp);
    auto golden = engine::create("netlist.reference", design);
    EXPECT_EXIT(engine::CrossCheck(*golden, probeless),
                ::testing::ExitedWithCode(1), "has no signal probes");
}
