/**
 * @file
 * On-disk snapshot container (MTSNAP) tests: lossless round-trip
 * through a file, restore into a fresh engine, and hard rejection of
 * every corruption class — wrong magic, truncation, bit flips (the
 * trailing checksum), tampered container version, trailing garbage.
 * Name matches the `replay` ctest label so both sanitizer configs run
 * these.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "engine/snapshot_io.hh"
#include "netlist/builder.hh"
#include "support/hashing.hh"

using namespace manticore;
namespace fs = std::filesystem;

namespace {

netlist::Netlist
counter(uint64_t horizon)
{
    netlist::CircuitBuilder b("snapctr");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() == b.lit(32, horizon));
    return b.build();
}

fs::path
tmpFile(const char *tag)
{
    return fs::temp_directory_path() /
           (std::string("manticore_snapio_") + tag + "_" +
            std::to_string(::getpid()) + ".mtsnap");
}

std::vector<char>
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const fs::path &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** A valid on-disk snapshot of the counter at cycle 123. */
fs::path
writeSample(const char *tag)
{
    auto eng = engine::create("netlist.compiled", counter(1u << 20));
    eng->step(123);
    engine::Snapshot snap;
    eng->save(snap);
    fs::path path = tmpFile(tag);
    engine::writeSnapshotFile(snap, path.string());
    return path;
}

/** Recompute the trailing checksum after tampering with the body, so
 *  the corruption under test is the one the reader sees (not just a
 *  checksum mismatch). */
void
resealChecksum(std::vector<char> &bytes)
{
    ASSERT_GT(bytes.size(), 8u);
    uint64_t sum = fnv1a64(bytes.data(), bytes.size() - 8);
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + i] =
            static_cast<char>((sum >> (8 * i)) & 0xff);
}

} // namespace

TEST(SnapshotIo, RoundTripsThroughDisk)
{
    fs::path path = writeSample("roundtrip");
    auto eng = engine::create("netlist.compiled", counter(1u << 20));
    eng->step(123);
    engine::Snapshot want;
    eng->save(want);

    engine::Snapshot got = engine::readSnapshotFile(path.string());
    EXPECT_EQ(got.version, want.version);
    EXPECT_EQ(got.family, want.family);
    EXPECT_EQ(got.engine, want.engine);
    EXPECT_EQ(got.designHash, want.designHash);
    EXPECT_EQ(got.lanes, want.lanes);
    EXPECT_EQ(got.cycle, 123u);
    ASSERT_EQ(got.sections.size(), want.sections.size());
    for (size_t i = 0; i < got.sections.size(); ++i)
        EXPECT_EQ(got.sections[i], want.sections[i]) << "section " << i;

    // The restored engine is the saved engine.
    auto resumed = engine::create("netlist.compiled", counter(1u << 20));
    resumed->restore(got);
    EXPECT_EQ(resumed->cycle(), 123u);
    EXPECT_EQ(resumed->read(resumed->probe("c")).toUint64(), 123u);
    resumed->step(10);
    EXPECT_EQ(resumed->read(resumed->probe("c")).toUint64(), 133u);
    fs::remove(path);
}

TEST(SnapshotIo, TryWriteReportsFailureInsteadOfExiting)
{
    // The multi-tenant daemon writes checkpoints to tenant-influenced
    // and runtime-mutable paths: an unwritable destination must come
    // back as an error string, never a process exit.
    auto eng = engine::create("netlist.compiled", counter(1u << 20));
    eng->step(7);
    engine::Snapshot snap;
    eng->save(snap);
    std::string error;
    EXPECT_FALSE(engine::tryWriteSnapshotFile(
        snap, "/manticore-no-such-dir/x.mtsnap", &error));
    EXPECT_NE(error.find("cannot write"), std::string::npos) << error;

    // And the happy path still reports success.
    fs::path path = tmpFile("trywrite");
    error.clear();
    EXPECT_TRUE(engine::tryWriteSnapshotFile(snap, path.string(), &error))
        << error;
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(engine::readSnapshotFile(path.string()).cycle, 7u);
    fs::remove(path);
}

TEST(SnapshotIo, AtomicWriteLeavesNoTempFiles)
{
    fs::path path = writeSample("atomic");
    // tmp-and-rename: the only artifact is the final file.
    int siblings = 0;
    for (const auto &e : fs::directory_iterator(path.parent_path()))
        if (e.path().string().find("manticore_snapio_atomic") !=
            std::string::npos)
            ++siblings;
    EXPECT_EQ(siblings, 1);
    fs::remove(path);
}

TEST(SnapshotIoDeath, RejectsMissingFile)
{
    EXPECT_EXIT(
        engine::readSnapshotFile("/nonexistent/nope.mtsnap"),
        ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SnapshotIoDeath, RejectsBadMagic)
{
    fs::path path = tmpFile("badmagic");
    std::vector<char> junk(64, 'x');
    spit(path, junk);
    EXPECT_EXIT(engine::readSnapshotFile(path.string()),
                ::testing::ExitedWithCode(1), "");
    fs::remove(path);
}

TEST(SnapshotIoDeath, RejectsTruncation)
{
    fs::path path = writeSample("trunc");
    std::vector<char> bytes = slurp(path);
    for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t(4)}) {
        std::vector<char> cut(bytes.begin(),
                              bytes.begin() + static_cast<long>(keep));
        spit(path, cut);
        EXPECT_EXIT(engine::readSnapshotFile(path.string()),
                    ::testing::ExitedWithCode(1), "")
            << "kept " << keep << " of " << bytes.size();
    }
    fs::remove(path);
}

TEST(SnapshotIoDeath, RejectsBitFlips)
{
    // Flip one byte at several offsets spanning header, payload and
    // checksum; the trailing FNV must catch every one.
    fs::path base = writeSample("flip");
    std::vector<char> bytes = slurp(base);
    for (size_t off : {size_t(0), size_t(9), bytes.size() / 2,
                       bytes.size() - 3}) {
        std::vector<char> bad = bytes;
        bad[off] = static_cast<char>(bad[off] ^ 0x40);
        spit(base, bad);
        EXPECT_EXIT(engine::readSnapshotFile(base.string()),
                    ::testing::ExitedWithCode(1), "")
            << "flip at " << off;
    }
    fs::remove(base);
}

TEST(SnapshotIoDeath, RejectsFutureContainerVersion)
{
    fs::path path = writeSample("version");
    std::vector<char> bytes = slurp(path);
    // Byte 7 is the container version (after the 7-byte magic); bump
    // it and RESEAL the checksum so the version check itself fires.
    bytes[7] = static_cast<char>(engine::kSnapshotFileVersion + 1);
    resealChecksum(bytes);
    spit(path, bytes);
    EXPECT_EXIT(engine::readSnapshotFile(path.string()),
                ::testing::ExitedWithCode(1), "version");
    fs::remove(path);
}

TEST(SnapshotIoDeath, RejectsTrailingGarbage)
{
    fs::path path = writeSample("trailing");
    std::vector<char> bytes = slurp(path);
    bytes.push_back('\0');
    spit(path, bytes);
    EXPECT_EXIT(engine::readSnapshotFile(path.string()),
                ::testing::ExitedWithCode(1), "");
    fs::remove(path);
}
