/**
 * @file
 * Runtime tests: host exception servicing (display reassembly from
 * global memory, finish, assertion failure), the Simulation facade,
 * and the encode/ship/decode/run loop.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "isa/encode.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"
#include "runtime/host.hh"
#include "runtime/simulation.hh"

using namespace manticore;

namespace {

netlist::Netlist
wideDisplayDesign()
{
    // Displays a 40-bit value (3 chunks) so argument reassembly from
    // global memory is exercised across words.
    netlist::CircuitBuilder b("wide_display");
    auto c = b.reg("c", 40, 0xfffffffff0ull & 0xffffffffffull);
    b.next(c, c.read() + b.lit(40, 1));
    b.display(c.read().bit(0) & !c.read().bit(1), "val=%d",
              {c.read()});
    b.finish(c.read() == b.lit(40, 0xfffffffff8ull));
    return b.build();
}

} // namespace

TEST(Runtime, WideDisplayArgsReassembled)
{
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    runtime::Simulation sim(wideDisplayDesign(), opts);
    EXPECT_EQ(sim.run(100), isa::RunStatus::Finished);
    ASSERT_FALSE(sim.displayLog().empty());
    // 0xfffffffff1 = 1099511627761.
    EXPECT_EQ(sim.displayLog()[0], "val=1099511627761");
}

TEST(Runtime, AssertFailureReportsMessage)
{
    netlist::CircuitBuilder b("failing");
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    b.assertAlways(b.lit(1, 1), c.read() < b.lit(16, 4),
                   "counter escaped");
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    runtime::Simulation sim(b.build(), opts);
    EXPECT_EQ(sim.run(100), isa::RunStatus::Failed);
    EXPECT_NE(sim.host().failureMessage().find("counter escaped"),
              std::string::npos);
}

TEST(Runtime, DisplayOrderingMatchesEvaluator)
{
    // Compare the full display transcript across the reference
    // evaluator and the machine for a design with several displays.
    netlist::Netlist nl = designs::buildBlur(48);
    netlist::Evaluator ref(nl);
    ref.run(64);

    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    runtime::Simulation sim(designs::buildBlur(48), opts);
    sim.run(64);
    EXPECT_EQ(sim.displayLog(), ref.displayLog());
}

TEST(Runtime, EncodedProgramRunsIdentically)
{
    netlist::Netlist nl = designs::buildJpeg(128);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    compiler::CompileResult cr = compiler::compile(nl, opts);

    isa::Program shipped =
        isa::decodeProgram(isa::encodeProgram(cr.program));

    machine::Machine direct(cr.program, opts.config);
    runtime::Host dhost(cr.program, direct.globalMemory());
    dhost.attach(engine::wrap(direct));
    machine::Machine remote(shipped, opts.config);
    runtime::Host rhost(shipped, remote.globalMemory());
    rhost.attach(engine::wrap(remote));

    EXPECT_EQ(direct.run(140), isa::RunStatus::Finished);
    EXPECT_EQ(remote.run(140), isa::RunStatus::Finished);
    EXPECT_EQ(direct.perf().vcycles, remote.perf().vcycles);
    EXPECT_EQ(dhost.displayLog(), rhost.displayLog());
}

TEST(Runtime, CrossCheckPassesWithEveryGoldenEngine)
{
    // The golden-model engine behind Simulation's lockstep
    // cross-check is a knob, not hard-coded to the reference
    // evaluator: all three engines must agree with the machine.
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    for (netlist::EvalMode mode :
         {netlist::EvalMode::Reference, netlist::EvalMode::Compiled,
          netlist::EvalMode::Parallel}) {
        netlist::EvalOptions eopts;
        eopts.numThreads = 2;
        runtime::Simulation sim(designs::buildBlur(128), opts, mode,
                                eopts);
        EXPECT_EQ(sim.goldenMode(), mode);
        EXPECT_EQ(sim.runCrossChecked(64), isa::RunStatus::Running)
            << sim.divergence();
        EXPECT_TRUE(sim.divergence().empty()) << sim.divergence();
        EXPECT_EQ(sim.vcycles(), 64u);
    }
}

TEST(Runtime, CrossCheckRunsToFinish)
{
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    runtime::Simulation sim(wideDisplayDesign(), opts,
                            netlist::EvalMode::Parallel, {2});
    EXPECT_EQ(sim.runCrossChecked(100), isa::RunStatus::Finished)
        << sim.divergence();
    EXPECT_TRUE(sim.divergence().empty());
}

TEST(Runtime, CrossCheckResyncsAfterPlainRun)
{
    // Plain run() segments advance only the machine; the golden model
    // must catch up instead of reporting a phantom divergence.
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    runtime::Simulation sim(designs::buildBlur(128), opts,
                            netlist::EvalMode::Compiled);
    EXPECT_EQ(sim.runCrossChecked(8), isa::RunStatus::Running);
    EXPECT_EQ(sim.run(8), isa::RunStatus::Running);
    EXPECT_EQ(sim.runCrossChecked(8), isa::RunStatus::Running)
        << sim.divergence();
    EXPECT_TRUE(sim.divergence().empty()) << sim.divergence();
    EXPECT_EQ(sim.vcycles(), 24u);
}

TEST(Runtime, CrossCheckAgreesOnAssertFailure)
{
    // Both engines fail the same assertion: that is agreement (empty
    // divergence), not a cross-check mismatch.
    netlist::CircuitBuilder b("failing");
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    b.assertAlways(b.lit(1, 1), c.read() < b.lit(16, 4),
                   "counter escaped");
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    runtime::Simulation sim(b.build(), opts,
                            netlist::EvalMode::Compiled);
    EXPECT_EQ(sim.runCrossChecked(100), isa::RunStatus::Failed);
    EXPECT_TRUE(sim.divergence().empty()) << sim.divergence();
    EXPECT_NE(sim.host().failureMessage().find("counter escaped"),
              std::string::npos);
}

TEST(Runtime, SimulationExposesCompileAndPerf)
{
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    runtime::Simulation sim(designs::buildMc(64), opts);
    EXPECT_GT(sim.compileResult().program.vcpl, 0u);
    sim.run(32);
    EXPECT_EQ(sim.vcycles(), 32u);
    EXPECT_GT(sim.effectiveRateKhz(), 0.0);
}
