/**
 * @file
 * Flat-tape ISA interpreter tests: a randomized ISA-program generator
 * (carry chains, predication, scratch/global memory, Send fan-in,
 * Expect) driving a three-way differential — reference Interpreter vs
 * TapeInterpreter vs cycle-level machine::Machine architectural state
 * after every Vcycle — plus targeted regressions for the interpreter
 * correctness fixes (Send-target register-file presizing, scratchInit
 * overflow rejection, EXPECT-Fail abort exactness) and the tape's
 * batched same-opcode run dispatch.
 *
 * The generated programs are hazard-padded (pipelineLatency NOPs after
 * every instruction) and their SENDs are staggered onto globally
 * unique slots, so the same binary is a legal schedule for the
 * cycle-level machine: no read-before-commit, no NoC link collisions.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "isa/exec_semantics.hh"
#include "isa/interpreter.hh"
#include "isa/tape_interpreter.hh"
#include "machine/machine.hh"
#include "runtime/host.hh"
#include "runtime/simulation.hh"
#include "support/rng.hh"

using namespace manticore;
using isa::Instruction;
using isa::Opcode;
using isa::Process;
using isa::Program;
using isa::Reg;

namespace {

Instruction
make(Opcode op, Reg rd = isa::kNoReg, Reg rs1 = isa::kNoReg,
     Reg rs2 = isa::kNoReg, Reg rs3 = isa::kNoReg, uint16_t imm = 0)
{
    Instruction i;
    i.opcode = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.rs3 = rs3;
    i.imm = imm;
    return i;
}

struct GeneratedProgram
{
    Program program;
    isa::MachineConfig config;
    Reg maxCompareReg = 0; ///< compare registers [0, maxCompareReg]
};

/** Random ISA program exercising every opcode class, legal on all
 *  three engines (see file header for the scheduling rules). */
GeneratedProgram
makeRandomProgram(uint64_t seed)
{
    Rng rng(seed);
    GeneratedProgram g;
    isa::MachineConfig &cfg = g.config;
    cfg.gridX = 1 + static_cast<unsigned>(rng.below(3));
    cfg.gridY = 1 + static_cast<unsigned>(rng.below(2));
    cfg.scratchSize = 128; // small, to exercise address wraparound
    unsigned num_procs = cfg.gridX * cfg.gridY;

    constexpr Reg kNumRegs = 12;   // working registers 0..11
    constexpr Reg kSendBase = 64;  // send-landing registers 64..
    const unsigned latency = cfg.pipelineLatency;
    // Globally unique SEND slots, spaced by more than the worst-case
    // route length so no two messages can share a NoC link cycle.
    const unsigned send_gap =
        cfg.gridX + cfg.gridY + cfg.sendInjectLatency + 2;
    unsigned next_send_slot = 0;

    Program &prog = g.program;
    prog.processes.resize(num_procs);
    std::vector<Reg> next_send_reg(num_procs, kSendBase);

    for (unsigned pid = 0; pid < num_procs; ++pid) {
        Process &p = prog.processes[pid];
        p.id = pid;
        p.privileged = pid == 0;
        for (Reg r = 0; r < kNumRegs; ++r)
            if (rng.chance(0.7))
                // Mix full-range and small values so shift amounts
                // land below 16 often enough to produce non-zero
                // results (an all-zero result hides wrong-operand
                // bugs).
                p.init[r] = rng.chance(0.4)
                                ? static_cast<uint16_t>(rng.below(20))
                                : static_cast<uint16_t>(rng.next());
        for (int f = 0; f < 2; ++f) {
            isa::CustomFunction fn;
            for (auto &lane : fn.lut)
                lane = static_cast<uint16_t>(rng.next());
            p.functions.push_back(fn);
        }
        unsigned scratch_words =
            static_cast<unsigned>(rng.below(cfg.scratchSize));
        for (unsigned a = 0; a < scratch_words; ++a)
            p.scratchInit.push_back(static_cast<uint16_t>(rng.next()));
    }

    for (unsigned pid = 0; pid < num_procs; ++pid) {
        Process &p = prog.processes[pid];
        auto reg = [&]() -> Reg {
            // Mostly working registers, sometimes a send-landing one.
            if (next_send_reg[pid] > kSendBase && rng.chance(0.15))
                return kSendBase +
                       static_cast<Reg>(
                           rng.below(next_send_reg[pid] - kSendBase));
            return static_cast<Reg>(rng.below(kNumRegs));
        };
        auto emit = [&](Instruction inst) {
            p.body.push_back(inst);
            // Hazard padding: every consumer sees committed values.
            for (unsigned n = 0; n < latency; ++n)
                p.body.push_back(make(Opcode::Nop));
        };

        unsigned count = 10 + static_cast<unsigned>(rng.below(14));
        for (unsigned k = 0; k < count; ++k) {
            unsigned pick = static_cast<unsigned>(
                rng.below(p.privileged ? 22u : 19u));
            switch (pick) {
              case 0:
                emit(make(Opcode::Set, reg(), isa::kNoReg, isa::kNoReg,
                          isa::kNoReg,
                          static_cast<uint16_t>(rng.next())));
                break;
              case 1:
                emit(make(Opcode::Mov, reg(), reg()));
                // Often follow with a second MOV: after NOP elision
                // the pair is adjacent and batches into one MOV run.
                if (rng.chance(0.5))
                    emit(make(Opcode::Mov, reg(), reg()));
                break;
              case 2: { // carry chain: ADD then dependent ADDC
                Reg lo = reg();
                emit(make(Opcode::Add, lo, reg(), reg()));
                if (rng.chance(0.7))
                    emit(make(Opcode::Addc, reg(), reg(), reg(), lo));
                break;
              }
              case 3: { // borrow chain: SUB then dependent SUBB
                Reg lo = reg();
                emit(make(Opcode::Sub, lo, reg(), reg()));
                if (rng.chance(0.7))
                    emit(make(Opcode::Subb, reg(), reg(), reg(), lo));
                break;
              }
              case 4: { // MUL/MULH over the same operands
                Reg a = reg(), b = reg();
                emit(make(Opcode::Mul, reg(), a, b));
                if (rng.chance(0.7))
                    emit(make(Opcode::Mulh, reg(), a, b));
                break;
              }
              case 5:
                emit(make(Opcode::And, reg(), reg(), reg()));
                break;
              case 6:
                emit(make(Opcode::Or, reg(), reg(), reg()));
                break;
              case 7:
                emit(make(Opcode::Xor, reg(), reg(), reg()));
                break;
              case 8:
                emit(make(rng.chance(0.5) ? Opcode::Sll : Opcode::Srl,
                          reg(), reg(), reg()));
                break;
              case 9:
                emit(make(rng.chance(0.5) ? Opcode::Seq : Opcode::Sltu,
                          reg(), reg(), reg()));
                break;
              case 10:
                emit(make(Opcode::Slts, reg(), reg(), reg()));
                break;
              case 11:
                emit(make(Opcode::Mux, reg(), reg(), reg(), reg()));
                break;
              case 12: {
                unsigned lo = static_cast<unsigned>(rng.below(16));
                unsigned len =
                    1 + static_cast<unsigned>(rng.below(16 - lo));
                emit(make(Opcode::Slice, reg(), reg(), isa::kNoReg,
                          isa::kNoReg,
                          Instruction::packSlice(lo, len)));
                break;
              }
              case 13: {
                Instruction cust =
                    make(Opcode::Cust, reg(), reg(), reg(), reg(),
                         static_cast<uint16_t>(rng.below(2)));
                cust.rs4 = reg();
                emit(cust);
                break;
              }
              case 14:
                emit(make(Opcode::Lld, reg(), reg(), isa::kNoReg,
                          isa::kNoReg,
                          static_cast<uint16_t>(rng.below(512))));
                break;
              case 15:
                emit(make(Opcode::Pred, isa::kNoReg, reg()));
                emit(make(Opcode::Lst, isa::kNoReg, reg(), reg(),
                          isa::kNoReg,
                          static_cast<uint16_t>(rng.below(512))));
                break;
              case 16:
                emit(make(Opcode::Pred, isa::kNoReg, reg()));
                break;
              case 17:
              case 18: { // SEND on a globally unique, padded slot
                uint32_t target =
                    static_cast<uint32_t>(rng.below(num_procs));
                Reg land = next_send_reg[target]++;
                unsigned slot = std::max<unsigned>(
                    next_send_slot,
                    static_cast<unsigned>(p.body.size()));
                while (p.body.size() < slot)
                    p.body.push_back(make(Opcode::Nop));
                next_send_slot = slot + send_gap;
                Instruction send = make(Opcode::Send, land, reg());
                send.target = target;
                emit(send);
                prog.processes[target].epilogueLength++;
                break;
              }
              case 19: // privileged: GLD
                emit(make(Opcode::Gld, reg(), reg(), reg(), isa::kNoReg,
                          static_cast<uint16_t>(rng.below(64))));
                break;
              case 20: // privileged: PRED + GST
                emit(make(Opcode::Pred, isa::kNoReg, reg()));
                emit(make(Opcode::Gst, isa::kNoReg, reg(), reg(),
                          reg(),
                          static_cast<uint16_t>(rng.below(64))));
                break;
              case 21: // privileged: EXPECT (eid 0 -> host Continue)
                emit(make(Opcode::Expect, isa::kNoReg, reg(), reg(),
                          isa::kNoReg, 0));
                break;
            }
        }
    }

    size_t max_body = 0;
    for (const Process &p : prog.processes)
        max_body = std::max(max_body, p.body.size());
    prog.vcpl = static_cast<unsigned>(max_body) + latency + send_gap + 4;
    for (unsigned pid = 0; pid < num_procs; ++pid)
        prog.placement.push_back({pid % cfg.gridX, pid / cfg.gridX});

    Reg max_send = kSendBase;
    for (Reg r : next_send_reg)
        max_send = std::max(max_send, r);
    g.maxCompareReg = max_send + 2;
    return g;
}

class TapeDifferential : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(TapeDifferential, ThreeEnginesAgreeOnAllArchitecturalState)
{
    uint64_t seed = 0x7a9e0000 + GetParam();
    GeneratedProgram g = makeRandomProgram(seed);

    isa::Interpreter ref(g.program, g.config);
    isa::TapeInterpreter tape(g.program, g.config);
    machine::Machine mach(g.program, g.config);

    auto service = [](uint32_t, uint16_t eid) {
        return eid == 0 ? isa::HostAction::Continue
                        : isa::HostAction::Finish;
    };
    ref.onException = service;
    tape.onException = service;
    mach.onException = service;

    constexpr uint64_t kVcycles = 16;
    for (uint64_t v = 0; v < kVcycles; ++v) {
        isa::RunStatus sr = ref.stepVcycle();
        isa::RunStatus st = tape.stepVcycle();
        isa::RunStatus sm = mach.runVcycle();
        ASSERT_EQ(sr, st) << "status divergence, seed " << seed
                          << " vcycle " << v;
        ASSERT_EQ(sr, sm) << "machine status divergence, seed " << seed
                          << " vcycle " << v;

        for (uint32_t pid = 0; pid < g.program.processes.size();
             ++pid) {
            for (Reg r = 0; r <= g.maxCompareReg; ++r) {
                ASSERT_EQ(ref.regValue(pid, r), tape.regValue(pid, r))
                    << "tape reg divergence: seed " << seed << " p"
                    << pid << " $r" << r << " vcycle " << v;
                ASSERT_EQ(ref.regCarry(pid, r), tape.regCarry(pid, r))
                    << "tape carry divergence: seed " << seed << " p"
                    << pid << " $r" << r << " vcycle " << v;
                ASSERT_EQ(ref.regValue(pid, r), mach.regValue(pid, r))
                    << "machine reg divergence: seed " << seed << " p"
                    << pid << " $r" << r << " vcycle " << v;
            }
            for (uint32_t a = 0; a < g.config.scratchSize; ++a) {
                ASSERT_EQ(ref.scratchValue(pid, a),
                          tape.scratchValue(pid, a))
                    << "tape scratch divergence: seed " << seed;
                ASSERT_EQ(ref.scratchValue(pid, a),
                          mach.scratchValue(pid, a))
                    << "machine scratch divergence: seed " << seed;
            }
        }
        if (sr != isa::RunStatus::Running)
            break;
    }

    EXPECT_EQ(ref.instructionsExecuted(), tape.instructionsExecuted())
        << "instret divergence, seed " << seed;
    EXPECT_EQ(ref.instructionsExecuted(), mach.perf().instructionsExecuted)
        << "machine instret divergence, seed " << seed;
    EXPECT_EQ(ref.sendsExecuted(), tape.sendsExecuted());
    EXPECT_EQ(ref.globalMemory().footprint(),
              tape.globalMemory().footprint());
    EXPECT_EQ(ref.globalMemory().footprint(),
              mach.globalMemory().footprint());
    EXPECT_EQ(ref.vcycle(), tape.vcycle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TapeDifferential,
                         ::testing::Range(0, 30));

namespace {

/** Single-process program factory used by the semantics tests. */
Program
singleProcess(std::vector<Instruction> body,
              std::unordered_map<Reg, uint16_t> init = {},
              bool privileged = false)
{
    Program p;
    Process proc;
    proc.id = 0;
    proc.privileged = privileged;
    proc.body = std::move(body);
    proc.init = std::move(init);
    p.processes.push_back(std::move(proc));
    return p;
}

class BothEngines : public ::testing::TestWithParam<isa::ExecMode>
{
  protected:
    isa::MachineConfig cfg()
    {
        isa::MachineConfig c;
        c.gridX = c.gridY = 1;
        return c;
    }
};

} // namespace

TEST_P(BothEngines, BatchedCarryChainSemantics)
{
    // ADD then ADDC, adjacent on the tape after NOP elision; the
    // ADDC's operand r10 aliases the ADD's destination.
    Program p = singleProcess(
        {make(Opcode::Add, 10, 1, 2),
         make(Opcode::Addc, 11, 10, 0, 10)},
        {{0, 0}, {1, 0xffff}, {2, 3}});
    auto c = cfg();
    auto interp = isa::makeInterpreter(p, c, GetParam());
    interp->stepVcycle();
    // r10 = 0x0002 carry 1; r11 = r10(new) + 0 + carry = 3.
    EXPECT_EQ(interp->regValue(0, 10), 2u);
    EXPECT_TRUE(interp->regCarry(0, 10));
    EXPECT_EQ(interp->regValue(0, 11), 3u);
}

TEST_P(BothEngines, BatchedBorrowChainSemantics)
{
    Program p = singleProcess(
        {make(Opcode::Sub, 10, 0, 1),
         make(Opcode::Subb, 11, 0, 0, 10)},
        {{0, 0}, {1, 1}});
    auto c = cfg();
    auto interp = isa::makeInterpreter(p, c, GetParam());
    interp->stepVcycle();
    EXPECT_EQ(interp->regValue(0, 10), 0xffffu);
    EXPECT_EQ(interp->regValue(0, 11), 0xffffu);
}

TEST_P(BothEngines, MulPairAndDependentMovRun)
{
    Program p = singleProcess(
        {make(Opcode::Mul, 10, 1, 2), make(Opcode::Mulh, 11, 1, 2),
         // MOV run where the second reads the first's destination:
         // in-run execution must stay strictly sequential.
         make(Opcode::Mov, 12, 10), make(Opcode::Mov, 13, 12)},
        {{1, 0x1234}, {2, 0x5678}});
    auto c = cfg();
    auto interp = isa::makeInterpreter(p, c, GetParam());
    interp->stepVcycle();
    uint32_t full = 0x1234u * 0x5678u;
    EXPECT_EQ(interp->regValue(0, 10), full & 0xffff);
    EXPECT_EQ(interp->regValue(0, 11), full >> 16);
    EXPECT_EQ(interp->regValue(0, 12), full & 0xffff);
    EXPECT_EQ(interp->regValue(0, 13), full & 0xffff);
}

TEST_P(BothEngines, PredicationSliceAndScratchAgree)
{
    Program p = singleProcess(
        {make(Opcode::Pred, isa::kNoReg, 0),
         make(Opcode::Lst, isa::kNoReg, 2, 5, isa::kNoReg, 0),
         make(Opcode::Pred, isa::kNoReg, 1),
         make(Opcode::Lst, isa::kNoReg, 2, 5, isa::kNoReg, 1),
         make(Opcode::Lld, 10, 2, isa::kNoReg, isa::kNoReg, 0),
         make(Opcode::Lld, 11, 2, isa::kNoReg, isa::kNoReg, 1),
         make(Opcode::Slice, 12, 5, isa::kNoReg, isa::kNoReg,
              Instruction::packSlice(4, 8))},
        {{0, 0}, {1, 1}, {2, 100}, {5, 0x7777}});
    auto c = cfg();
    auto interp = isa::makeInterpreter(p, c, GetParam());
    interp->stepVcycle();
    EXPECT_EQ(interp->regValue(0, 10), 0u);
    EXPECT_EQ(interp->regValue(0, 11), 0x7777u);
    EXPECT_EQ(interp->scratchValue(0, 101), 0x7777u);
    EXPECT_EQ(interp->regValue(0, 12), 0x77u);
}

TEST_P(BothEngines, SendPresizesTargetRegisterFile)
{
    // p0 sends into p1's $r50, which p1's own body never references:
    // the register file must be pre-sized from incoming SENDs (the
    // old code silently resized it mid-run).
    Program p;
    Process p0;
    p0.id = 0;
    p0.init = {{1, 0xbeef}};
    Instruction send = make(Opcode::Send, 50, 1);
    send.target = 1;
    p0.body = {send};
    Process p1;
    p1.id = 1;
    p1.body = {make(Opcode::Nop)};
    p1.epilogueLength = 1;
    p.processes = {p0, p1};
    p.placement = {{0, 0}, {1, 0}};
    p.vcpl = 8;

    isa::MachineConfig c;
    c.gridX = 2;
    c.gridY = 1;
    auto interp = isa::makeInterpreter(p, c, GetParam());
    interp->stepVcycle();
    EXPECT_EQ(interp->regValue(1, 50), 0xbeefu);

    machine::Machine mach(p, c);
    mach.runVcycle();
    EXPECT_EQ(mach.regValue(1, 50), 0xbeefu);
}

TEST_P(BothEngines, ExpectFailAbortExactness)
{
    // The failing EXPECT counts toward instret; nothing after it runs.
    Program p = singleProcess(
        {make(Opcode::Add, 10, 1, 1),
         make(Opcode::Expect, isa::kNoReg, 0, 1, isa::kNoReg, 7),
         make(Opcode::Set, 11, isa::kNoReg, isa::kNoReg, isa::kNoReg,
              0x5555)},
        {{0, 0}, {1, 5}}, true);
    auto c = cfg();
    auto interp = isa::makeInterpreter(p, c, GetParam());
    uint16_t seen = 0;
    interp->onException = [&](uint32_t, uint16_t eid) {
        seen = eid;
        return isa::HostAction::Fail;
    };
    EXPECT_EQ(interp->stepVcycle(), isa::RunStatus::Failed);
    EXPECT_EQ(seen, 7u);
    EXPECT_EQ(interp->instructionsExecuted(), 2u);
    EXPECT_EQ(interp->regValue(0, 10), 10u);
    EXPECT_EQ(interp->regValue(0, 11), 0u); // never reached
    EXPECT_EQ(interp->vcycle(), 0u);        // Vcycle did not complete
}

INSTANTIATE_TEST_SUITE_P(Modes, BothEngines,
                         ::testing::Values(isa::ExecMode::Reference,
                                           isa::ExecMode::Tape),
                         [](const auto &info) {
                             return std::string(
                                 isa::execModeName(info.param));
                         });

TEST(TapeInterpreter, ElidesNopsAndBatchesRunsOnCompiledDesigns)
{
    netlist::Netlist nl = designs::buildMm(48);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 4;
    compiler::CompileResult result = compiler::compile(nl, opts);

    size_t body_slots = 0;
    for (const auto &proc : result.program.processes)
        body_slots += proc.body.size();

    isa::TapeInterpreter tape(result.program, opts.config);
    EXPECT_GT(tape.nopsElided(), 0u);
    EXPECT_LE(tape.tapeLength(), body_slots - tape.nopsElided())
        << "pair fusion compacts the stream below the non-NOP count";
    EXPECT_LT(tape.dispatches(), tape.tapeLength())
        << "same-opcode bursts should batch into fewer dispatches";

    // And the design still passes its golden self-check end to end.
    runtime::Host host(result.program, tape.globalMemory());
    host.attach(engine::wrap(tape));
    EXPECT_EQ(tape.run(48 + 8), isa::RunStatus::Finished)
        << host.failureMessage();
}

TEST(TapeInterpreter, MatchesReferenceOnCompiledDesignEveryVcycle)
{
    netlist::Netlist nl = designs::buildVta(200);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    compiler::CompileResult result = compiler::compile(nl, opts);

    auto ref = isa::makeInterpreter(result.program, opts.config,
                                    isa::ExecMode::Reference);
    auto tape = isa::makeInterpreter(result.program, opts.config,
                                     isa::ExecMode::Tape);
    runtime::Host rhost(result.program, ref->globalMemory());
    rhost.attach(engine::wrap(*ref));
    runtime::Host thost(result.program, tape->globalMemory());
    thost.attach(engine::wrap(*tape));

    for (int v = 0; v < 80; ++v) {
        ASSERT_EQ(ref->stepVcycle(), tape->stepVcycle());
        for (const auto &homes : result.regChunkHome)
            for (const auto &home : homes)
                ASSERT_EQ(ref->regValue(home.process, home.reg),
                          tape->regValue(home.process, home.reg))
                    << "divergence at vcycle " << v;
    }
    EXPECT_EQ(ref->instructionsExecuted(), tape->instructionsExecuted());
    EXPECT_EQ(ref->sendsExecuted(), tape->sendsExecuted());
}

TEST(SimulationIsaCrossCheck, MachineMatchesBothInterpreterModes)
{
    netlist::Netlist nl = designs::buildCgra(96);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;

    for (isa::ExecMode mode :
         {isa::ExecMode::Reference, isa::ExecMode::Tape}) {
        runtime::Simulation sim(nl, opts);
        isa::RunStatus st = sim.runIsaCrossChecked(40, mode);
        EXPECT_NE(st, isa::RunStatus::Failed) << sim.divergence();
        EXPECT_TRUE(sim.divergence().empty()) << sim.divergence();
    }
}

TEST(IsaValidate, RejectsScratchInitOverflow)
{
    Program p = singleProcess({make(Opcode::Nop)});
    isa::MachineConfig c;
    c.gridX = c.gridY = 1;
    c.scratchSize = 8;
    p.processes[0].scratchInit.assign(9, 0xabcd);
    EXPECT_EXIT(isa::validate(p, c), ::testing::ExitedWithCode(1),
                "scratchInit has 9 words");
}

TEST(IsaValidate, RejectsSendWithoutTargetRegister)
{
    Program p = singleProcess({make(Opcode::Send, isa::kNoReg, 1)},
                              {{1, 1}});
    isa::MachineConfig c;
    c.gridX = c.gridY = 1;
    EXPECT_EXIT(isa::validate(p, c), ::testing::ExitedWithCode(1),
                "SEND without a target register");
}

TEST(IsaValidate, RejectsWritingInstructionWithoutDestination)
{
    Program p = singleProcess({make(Opcode::Add, isa::kNoReg, 1, 1)},
                              {{1, 1}});
    isa::MachineConfig c;
    c.gridX = c.gridY = 1;
    EXPECT_EXIT(isa::validate(p, c), ::testing::ExitedWithCode(1),
                "without a destination register");
}

TEST(IsaValidate, RejectsRegisterBeyondFileSize)
{
    // Register-file capacity is policed in validate (the engines size
    // their files from actual usage and assert instead of resizing).
    isa::MachineConfig c;
    c.gridX = c.gridY = 1;
    Program p = singleProcess(
        {make(Opcode::Add, c.regFileSize, 1, 1)}, {{1, 1}});
    EXPECT_EXIT(isa::validate(p, c), ::testing::ExitedWithCode(1),
                "exceeds the 2048-entry register file");

    Program q = singleProcess({make(Opcode::Nop)});
    q.processes[0].init[c.regFileSize + 7] = 1;
    EXPECT_EXIT(isa::validate(q, c), ::testing::ExitedWithCode(1),
                "init register");
}
