/**
 * @file
 * Tests for the netlist-level optimiser (equivalence + shrinkage) and
 * the VCD waveform recorder (§8 future-work feature built on the
 * observation map).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/compiler.hh"
#include "designs/designs.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"
#include "netlist/optimize.hh"
#include "runtime/waveform.hh"

using manticore::netlist::EvalMode;

using namespace manticore;

TEST(NetlistOpt, FoldsCsesAndRemovesDeadNodes)
{
    netlist::CircuitBuilder b("opt");
    auto r = b.reg("r", 16, 3);
    netlist::Signal k = b.lit(16, 4) * b.lit(16, 5); // foldable
    netlist::Signal e1 = r.read() + k;
    netlist::Signal e2 = r.read() + k; // CSE duplicate
    (void)(r.read() ^ b.lit(16, 0x1234)); // dead
    b.next(r, b.mux(e1 == e2, e1, e2));
    netlist::Netlist nl = b.build();

    netlist::NetlistOptStats stats;
    netlist::Netlist opt = netlist::optimizeNetlist(nl, &stats);
    EXPECT_GT(stats.folded, 0u);
    EXPECT_GT(stats.csed, 0u);
    EXPECT_GT(stats.deadRemoved, 0u);
    EXPECT_LT(opt.numNodes(), nl.numNodes());

    netlist::Evaluator a(nl), c(opt);
    for (int i = 0; i < 16; ++i) {
        a.step();
        c.step();
        ASSERT_EQ(a.regValue(0), c.regValue(0)) << "cycle " << i;
    }
}

TEST(NetlistOpt, PreservesAllBenchmarkSemantics)
{
    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        netlist::Netlist nl = bm.build(48);
        netlist::NetlistOptStats stats;
        netlist::Netlist opt = netlist::optimizeNetlist(nl, &stats);
        EXPECT_LE(stats.nodesAfter, stats.nodesBefore) << bm.name;
        // The optimised design still passes its golden self-check.
        netlist::Evaluator eval(opt);
        EXPECT_EQ(eval.run(64), netlist::SimStatus::Finished)
            << bm.name << ": " << eval.failureMessage();
    }
}

TEST(NetlistOpt, MemReadsCseOnlyWithinSameAddress)
{
    netlist::CircuitBuilder b("memcse");
    auto mem = b.memory("m", 16, 8);
    auto p = b.reg("p", 16, 1);
    netlist::Signal a0 = mem.read(b.lit(3, 1));
    netlist::Signal a1 = mem.read(b.lit(3, 1)); // same address: CSE ok
    netlist::Signal a2 = mem.read(b.lit(3, 2)); // different: kept
    b.next(p, a0 + a1 + a2);
    mem.write(p.read().trunc(3), p.read(), b.lit(1, 1));
    netlist::NetlistOptStats stats;
    netlist::Netlist opt = netlist::optimizeNetlist(b.build(), &stats);
    EXPECT_GE(stats.csed, 1u);

    unsigned reads = 0;
    for (const auto &n : opt.nodes())
        if (n.kind == netlist::OpKind::MemRead)
            ++reads;
    EXPECT_EQ(reads, 2u);
}

TEST(Waveform, RecordsCounterChangesAsVcd)
{
    netlist::CircuitBuilder b("wave");
    auto c = b.reg("count", 8);
    b.next(c, c.read() + b.lit(8, 1));
    auto flag = b.reg("flag", 1);
    b.next(flag, c.read().bit(1));
    b.finish(b.lit(1, 0));
    netlist::Netlist nl = b.build();

    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    compiler::CompileResult cr = compiler::compile(nl, opts);
    machine::Machine mach(cr.program, opts.config);

    runtime::WaveformRecorder wave(nl, cr);
    for (uint64_t v = 0; v < 8; ++v) {
        mach.runVcycle();
        wave.sample(mach, v);
    }
    EXPECT_GT(wave.changesRecorded(), 8u); // count changes every cycle

    std::ostringstream os;
    wave.writeVcd(os);
    std::string vcd = os.str();
    EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);
    EXPECT_NE(vcd.find("count"), std::string::npos);
    EXPECT_NE(vcd.find("flag"), std::string::npos);
    EXPECT_NE(vcd.find("b00000011"), std::string::npos); // count == 3
    EXPECT_NE(vcd.find("#5"), std::string::npos);
}

TEST(Waveform, RecordsFromEitherEvaluatorEngine)
{
    netlist::CircuitBuilder b("wv");
    auto count = b.reg("count", 8);
    b.next(count, count.read() + b.lit(8, 1));
    netlist::Netlist nl = b.build();

    std::string vcds[2];
    for (EvalMode mode : {EvalMode::Reference, EvalMode::Compiled}) {
        auto eval = netlist::makeEvaluator(nl, mode);
        runtime::WaveformRecorder wave(nl);
        for (uint64_t v = 0; v < 10; ++v) {
            eval->step();
            wave.sample(*eval, v);
        }
        EXPECT_EQ(wave.changesRecorded(), 10u);
        std::ostringstream os;
        wave.writeVcd(os);
        vcds[mode == EvalMode::Compiled] = os.str();
    }
    // Same design, same stimulus: both engines must produce the
    // byte-identical waveform.
    EXPECT_EQ(vcds[0], vcds[1]);
    EXPECT_NE(vcds[0].find("count"), std::string::npos);
}

TEST(Waveform, MatchesEvaluatorOnBenchmark)
{
    netlist::Netlist nl = designs::buildBlur(128);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 3;
    // Waveform homes index the *source* netlist registers, so compare
    // against the evaluator of the same source.
    compiler::CompileResult cr = compiler::compile(nl, opts);
    machine::Machine mach(cr.program, opts.config);
    netlist::Evaluator eval(nl);
    runtime::WaveformRecorder wave(nl, cr);
    for (uint64_t v = 0; v < 32; ++v) {
        mach.runVcycle();
        eval.step();
        wave.sample(mach, v);
    }
    EXPECT_GT(wave.changesRecorded(), 0u);
}
