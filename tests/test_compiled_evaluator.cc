/**
 * @file
 * Differential tests for the compiled tape evaluator: randomized
 * netlists covering every OpKind, widths 1..200, memories, asserts,
 * displays and $finish, run through both the reference Evaluator and
 * the CompiledEvaluator with identical input stimulus, asserting
 * identical register / memory / display / status state every cycle.
 * Plus directed tests for the commit-ordering corner cases the arena
 * layout introduces (register storage doubling as RegRead slots).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "netlist/builder.hh"
#include "netlist/compiled_evaluator.hh"
#include "netlist/evaluator.hh"
#include "support/rng.hh"

using namespace manticore;
using netlist::CompiledEvaluator;
using netlist::Evaluator;
using netlist::MemId;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::OpKind;
using netlist::RegId;
using netlist::SimStatus;

namespace {

constexpr unsigned kMaxWidth = 200;

BitVector
randomValue(Rng &rng, unsigned width)
{
    std::vector<uint64_t> limbs((width + 63) / 64);
    for (auto &l : limbs)
        l = rng.next();
    return BitVector::fromLimbs(width, limbs);
}

/** Grows a random but always-valid netlist over all OpKinds. */
class RandomCircuit
{
  public:
    explicit RandomCircuit(uint64_t seed) : _rng(seed), _netlist("rnd") {}

    Netlist
    build()
    {
        // Inputs, registers, memories first so the op soup can use them.
        unsigned num_inputs = 2 + _rng.below(3);
        for (unsigned i = 0; i < num_inputs; ++i) {
            Node n;
            n.kind = OpKind::Input;
            n.width = randomWidth();
            n.name = "in" + std::to_string(i);
            _inputWidths.push_back(n.width);
            record(_netlist.addNode(std::move(n)));
        }
        unsigned num_regs = 3 + _rng.below(4);
        for (unsigned r = 0; r < num_regs; ++r) {
            netlist::Register reg;
            reg.name = "r" + std::to_string(r);
            reg.width = randomWidth();
            reg.init = randomValue(_rng, reg.width);
            RegId id = _netlist.addRegister(std::move(reg));
            _regs.push_back(id);
            record(_netlist.reg(id).current);
        }
        unsigned num_mems = 1 + _rng.below(2);
        for (unsigned m = 0; m < num_mems; ++m) {
            netlist::Memory mem;
            mem.name = "m" + std::to_string(m);
            mem.width = randomWidth();
            mem.depth = 4 + static_cast<unsigned>(_rng.below(13));
            for (unsigned a = 0; a < mem.depth; ++a)
                mem.init.push_back(randomValue(_rng, mem.width));
            _mems.push_back(_netlist.addMemory(std::move(mem)));
        }

        unsigned num_ops = 40 + _rng.below(40);
        for (unsigned i = 0; i < num_ops; ++i)
            addRandomOp();

        for (RegId r : _regs)
            _netlist.connectNext(r, ofWidth(_netlist.reg(r).width));

        unsigned num_writes = 1 + _rng.below(3);
        for (unsigned i = 0; i < num_writes; ++i) {
            netlist::MemWrite w;
            w.mem = _mems[_rng.below(_mems.size())];
            w.addr = any();
            w.data = ofWidth(_netlist.memory(w.mem).width);
            w.enable = ofWidth(1);
            _netlist.addMemWrite(w);
        }

        unsigned num_displays = 1 + _rng.below(2);
        for (unsigned i = 0; i < num_displays; ++i) {
            netlist::Display d;
            d.enable = ofWidth(1);
            d.format = "a=%d b=%x";
            d.args = {any(), any()};
            _netlist.addDisplay(std::move(d));
        }

        if (_rng.chance(0.5)) {
            netlist::Assert a;
            a.enable = ofWidth(1);
            a.cond = ofWidth(1);
            a.message = "random assertion";
            _netlist.addAssert(std::move(a));
        }
        if (_rng.chance(0.5)) {
            netlist::Finish f;
            f.enable = ofWidth(1);
            _netlist.addFinish(f);
        }

        _netlist.validate();
        return std::move(_netlist);
    }

    const std::vector<unsigned> &inputWidths() const
    {
        return _inputWidths;
    }

  private:
    unsigned
    randomWidth()
    {
        // Bias towards the interesting boundaries around 64.
        switch (_rng.below(4)) {
          case 0: return 1 + static_cast<unsigned>(_rng.below(16));
          case 1: return 60 + static_cast<unsigned>(_rng.below(10));
          default:
            return 1 + static_cast<unsigned>(_rng.below(kMaxWidth));
        }
    }

    void
    record(NodeId id)
    {
        _pool.push_back(id);
        _byWidth[_netlist.node(id).width].push_back(id);
    }

    NodeId any() { return _pool[_rng.below(_pool.size())]; }

    /** A node of exactly width w (materialising a constant if the
     *  pool has none). */
    NodeId
    ofWidth(unsigned w)
    {
        auto it = _byWidth.find(w);
        if (it != _byWidth.end() && !it->second.empty() &&
            !_rng.chance(0.1))
            return it->second[_rng.below(it->second.size())];
        Node c;
        c.kind = OpKind::Const;
        c.width = w;
        c.value = randomValue(_rng, w);
        NodeId id = _netlist.addNode(std::move(c));
        record(id);
        return id;
    }

    void
    addRandomOp()
    {
        static const OpKind kinds[] = {
            OpKind::Const, OpKind::MemRead, OpKind::Add, OpKind::Sub,
            OpKind::Mul, OpKind::And, OpKind::Or, OpKind::Xor,
            OpKind::Not, OpKind::Shl, OpKind::Lshr, OpKind::Eq,
            OpKind::Ult, OpKind::Slt, OpKind::Mux, OpKind::Slice,
            OpKind::Concat, OpKind::ZExt, OpKind::SExt, OpKind::RedOr,
            OpKind::RedAnd, OpKind::RedXor,
        };
        OpKind kind = kinds[_rng.below(sizeof(kinds) / sizeof(kinds[0]))];
        Node n;
        n.kind = kind;
        switch (kind) {
          case OpKind::Const:
            n.width = randomWidth();
            n.value = randomValue(_rng, n.width);
            break;
          case OpKind::MemRead: {
            n.memId = _mems[_rng.below(_mems.size())];
            n.width = _netlist.memory(n.memId).width;
            n.operands = {any()};
            break;
          }
          case OpKind::Add:
          case OpKind::Sub:
          case OpKind::Mul:
          case OpKind::And:
          case OpKind::Or:
          case OpKind::Xor: {
            NodeId a = any();
            n.width = _netlist.node(a).width;
            n.operands = {a, ofWidth(n.width)};
            break;
          }
          case OpKind::Not: {
            NodeId a = any();
            n.width = _netlist.node(a).width;
            n.operands = {a};
            break;
          }
          case OpKind::Shl:
          case OpKind::Lshr: {
            NodeId a = any();
            n.width = _netlist.node(a).width;
            n.operands = {a, any()};
            break;
          }
          case OpKind::Eq:
          case OpKind::Ult:
          case OpKind::Slt: {
            NodeId a = any();
            n.width = 1;
            n.operands = {a, ofWidth(_netlist.node(a).width)};
            break;
          }
          case OpKind::Mux: {
            NodeId t = any();
            n.width = _netlist.node(t).width;
            n.operands = {ofWidth(1), t, ofWidth(n.width)};
            break;
          }
          case OpKind::Slice: {
            NodeId a = any();
            unsigned aw = _netlist.node(a).width;
            unsigned len = 1 + static_cast<unsigned>(_rng.below(aw));
            n.width = len;
            n.lo = static_cast<unsigned>(_rng.below(aw - len + 1));
            n.operands = {a};
            break;
          }
          case OpKind::Concat: {
            NodeId a = any();
            NodeId b = any();
            unsigned w =
                _netlist.node(a).width + _netlist.node(b).width;
            if (w > 250)
                return; // keep the soup bounded
            n.width = w;
            n.operands = {a, b};
            break;
          }
          case OpKind::ZExt:
          case OpKind::SExt: {
            NodeId a = any();
            unsigned aw = _netlist.node(a).width;
            n.width = aw + static_cast<unsigned>(_rng.below(66));
            if (n.width > 250)
                n.width = 250;
            n.operands = {a};
            break;
          }
          case OpKind::RedOr:
          case OpKind::RedAnd:
          case OpKind::RedXor:
            n.width = 1;
            n.operands = {any()};
            break;
          default:
            return;
        }
        record(_netlist.addNode(std::move(n)));
    }

    Rng _rng;
    Netlist _netlist;
    std::vector<NodeId> _pool;
    std::map<unsigned, std::vector<NodeId>> _byWidth;
    std::vector<RegId> _regs;
    std::vector<MemId> _mems;
    std::vector<unsigned> _inputWidths;
};

/** Step both evaluators in lockstep, checking full architectural
 *  state every cycle. */
void
runDifferential(Netlist nl, const std::vector<unsigned> &input_widths,
                uint64_t seed, unsigned cycles)
{
    Evaluator ref(nl);
    CompiledEvaluator tape(nl);
    Rng drive(seed ^ 0xd1ffe7e57ull);

    for (unsigned c = 0; c < cycles; ++c) {
        for (size_t i = 0; i < input_widths.size(); ++i) {
            BitVector v = randomValue(drive, input_widths[i]);
            std::string name = "in" + std::to_string(i);
            ref.setInput(name, v);
            tape.setInput(name, v);
        }
        SimStatus a = ref.step();
        SimStatus b = tape.step();
        ASSERT_EQ(a, b) << "status diverged at cycle " << c;
        ASSERT_EQ(ref.cycle(), tape.cycle());
        ASSERT_EQ(ref.failureMessage(), tape.failureMessage());
        for (size_t r = 0; r < nl.numRegisters(); ++r) {
            ASSERT_EQ(ref.regValue(static_cast<RegId>(r)),
                      tape.regValue(static_cast<RegId>(r)))
                << "reg " << nl.reg(static_cast<RegId>(r)).name
                << " diverged at cycle " << c;
        }
        for (size_t m = 0; m < nl.numMemories(); ++m) {
            for (unsigned addr = 0;
                 addr < nl.memory(static_cast<MemId>(m)).depth; ++addr) {
                ASSERT_EQ(ref.memValue(static_cast<MemId>(m), addr),
                          tape.memValue(static_cast<MemId>(m), addr))
                    << "mem " << m << "[" << addr
                    << "] diverged at cycle " << c;
            }
        }
        ASSERT_EQ(ref.displayLog().size(), tape.displayLog().size())
            << "display count diverged at cycle " << c;
        if (a != SimStatus::Ok)
            break;
    }
    ASSERT_EQ(ref.displayLog(), tape.displayLog());
}

} // namespace

TEST(CompiledEvaluator, RandomizedDifferential)
{
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        RandomCircuit gen(seed * 0x9e3779b9ull);
        Netlist nl = gen.build();
        SCOPED_TRACE("seed " + std::to_string(seed));
        runDifferential(std::move(nl), gen.inputWidths(), seed, 48);
    }
}

TEST(CompiledEvaluator, RegisterSwapUsesPreCommitValues)
{
    // a.next = b, b.next = a: the classic case where unified
    // register/RegRead storage must double-buffer the commit.
    netlist::CircuitBuilder b("swap");
    auto ra = b.reg("a", 64, 1);
    auto rb = b.reg("b", 64, 2);
    b.next(ra, rb.read());
    b.next(rb, ra.read());
    Netlist nl = b.build();

    CompiledEvaluator tape(nl);
    tape.step();
    EXPECT_EQ(tape.regValue("a").toUint64(), 2u);
    EXPECT_EQ(tape.regValue("b").toUint64(), 1u);
    tape.step();
    EXPECT_EQ(tape.regValue("a").toUint64(), 1u);
    EXPECT_EQ(tape.regValue("b").toUint64(), 2u);
}

TEST(CompiledEvaluator, MemWriteSeesPreCommitRegisterData)
{
    // The memory write's data/addr come straight from a register's
    // RegRead node; the write must capture the OLD register value
    // even though the register also commits this cycle.
    netlist::CircuitBuilder b("memorder");
    auto counter = b.reg("counter", 8, 5);
    b.next(counter, counter.read() + b.lit(8, 1));
    auto mem = b.memory("m", 8, 16);
    mem.write(b.lit(8, 3), counter.read(), b.lit(1, 1));
    Netlist nl = b.build();

    Evaluator ref(nl);
    CompiledEvaluator tape(nl);
    ref.step();
    tape.step();
    EXPECT_EQ(ref.memValue(0, 3).toUint64(), 5u);
    EXPECT_EQ(tape.memValue(0, 3).toUint64(), 5u);
    EXPECT_EQ(tape.regValue("counter").toUint64(), 6u);
}

TEST(CompiledEvaluator, SelfNextRegisterIsStable)
{
    netlist::CircuitBuilder b("hold");
    auto r = b.reg("r", 128, 0);
    b.next(r, r.read());
    Netlist nl = b.build();
    // Give it a wide nonzero init through the raw netlist interface.
    CompiledEvaluator tape(nl);
    tape.step();
    tape.step();
    EXPECT_EQ(tape.regValue("r"), BitVector(128));
}

TEST(CompiledEvaluator, WideArithmeticMatchesBitVector)
{
    netlist::CircuitBuilder b("wide");
    auto acc = b.reg("acc", 192, 1);
    auto k = b.lit(BitVector::fromLimbs(
        192, {0x9e3779b97f4a7c15ull, 0xdeadbeefcafef00dull, 0x12345ull}));
    b.next(acc, acc.read() * k + k);
    Netlist nl = b.build();

    Evaluator ref(nl);
    CompiledEvaluator tape(nl);
    for (int i = 0; i < 16; ++i) {
        ref.step();
        tape.step();
        ASSERT_EQ(ref.regValue(0), tape.regValue(0)) << "cycle " << i;
    }
}

TEST(CompiledEvaluator, FactoryBuildsBothModes)
{
    netlist::CircuitBuilder b("even_odd");
    auto counter = b.reg("counter", 16);
    b.next(counter, counter.read() + b.lit(16, 1));
    netlist::Signal is_even = !counter.read().bit(0);
    b.display(is_even, "%d is an even number", {counter.read()});
    b.display(!is_even, "%d is an odd number", {counter.read()});
    b.finish(counter.read() == b.lit(16, 20));
    Netlist nl = b.build();

    auto ref = netlist::makeEvaluator(nl, netlist::EvalMode::Reference);
    auto tape = netlist::makeEvaluator(nl, netlist::EvalMode::Compiled);
    EXPECT_EQ(ref->run(100), SimStatus::Finished);
    EXPECT_EQ(tape->run(100), SimStatus::Finished);
    EXPECT_EQ(ref->cycle(), tape->cycle());
    EXPECT_EQ(ref->displayLog(), tape->displayLog());
    EXPECT_EQ(tape->displayLog().size(), 21u);
    EXPECT_EQ(tape->displayLog()[20], "20 is an even number");
}
