/**
 * @file
 * Differential tests for the compiled tape evaluator: randomized
 * netlists (tests/random_circuit.hh) covering every OpKind, widths
 * 1..200, memories, asserts, displays and $finish, run through both
 * the reference Evaluator and the CompiledEvaluator with identical
 * input stimulus, asserting identical register / memory / display /
 * status state every cycle.  Plus directed tests for the
 * commit-ordering corner cases the arena layout introduces (register
 * storage doubling as RegRead slots).
 */

#include <gtest/gtest.h>

#include <vector>

#include "netlist/builder.hh"
#include "netlist/compiled_evaluator.hh"
#include "netlist/evaluator.hh"
#include "random_circuit.hh"

using namespace manticore;
using netlist::CompiledEvaluator;
using netlist::Evaluator;
using netlist::MemId;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;
using netlist::OpKind;
using netlist::RegId;
using netlist::SimStatus;
using manticore::testing::RandomCircuit;
using manticore::testing::randomValue;

namespace {

/** Step both evaluators in lockstep, checking full architectural
 *  state every cycle. */
void
runDifferential(Netlist nl, const std::vector<unsigned> &input_widths,
                uint64_t seed, unsigned cycles)
{
    Evaluator ref(nl);
    CompiledEvaluator tape(nl);
    Rng drive(seed ^ 0xd1ffe7e57ull);

    for (unsigned c = 0; c < cycles; ++c) {
        for (size_t i = 0; i < input_widths.size(); ++i) {
            BitVector v = randomValue(drive, input_widths[i]);
            std::string name = "in" + std::to_string(i);
            ref.setInput(name, v);
            tape.setInput(name, v);
        }
        SimStatus a = ref.step();
        SimStatus b = tape.step();
        ASSERT_EQ(a, b) << "status diverged at cycle " << c;
        ASSERT_EQ(ref.cycle(), tape.cycle());
        ASSERT_EQ(ref.failureMessage(), tape.failureMessage());
        for (size_t r = 0; r < nl.numRegisters(); ++r) {
            ASSERT_EQ(ref.regValue(static_cast<RegId>(r)),
                      tape.regValue(static_cast<RegId>(r)))
                << "reg " << nl.reg(static_cast<RegId>(r)).name
                << " diverged at cycle " << c;
        }
        for (size_t m = 0; m < nl.numMemories(); ++m) {
            for (unsigned addr = 0;
                 addr < nl.memory(static_cast<MemId>(m)).depth; ++addr) {
                ASSERT_EQ(ref.memValue(static_cast<MemId>(m), addr),
                          tape.memValue(static_cast<MemId>(m), addr))
                    << "mem " << m << "[" << addr
                    << "] diverged at cycle " << c;
            }
        }
        ASSERT_EQ(ref.displayLog().size(), tape.displayLog().size())
            << "display count diverged at cycle " << c;
        if (a != SimStatus::Ok)
            break;
    }
    ASSERT_EQ(ref.displayLog(), tape.displayLog());
}

} // namespace

TEST(CompiledEvaluator, RandomizedDifferential)
{
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        RandomCircuit gen(seed * 0x9e3779b9ull);
        Netlist nl = gen.build();
        SCOPED_TRACE("seed " + std::to_string(seed));
        runDifferential(std::move(nl), gen.inputWidths(), seed, 48);
    }
}

TEST(CompiledEvaluator, RegisterSwapUsesPreCommitValues)
{
    // a.next = b, b.next = a: the classic case where unified
    // register/RegRead storage must double-buffer the commit.
    netlist::CircuitBuilder b("swap");
    auto ra = b.reg("a", 64, 1);
    auto rb = b.reg("b", 64, 2);
    b.next(ra, rb.read());
    b.next(rb, ra.read());
    Netlist nl = b.build();

    CompiledEvaluator tape(nl);
    tape.step();
    EXPECT_EQ(tape.regValue("a").toUint64(), 2u);
    EXPECT_EQ(tape.regValue("b").toUint64(), 1u);
    tape.step();
    EXPECT_EQ(tape.regValue("a").toUint64(), 1u);
    EXPECT_EQ(tape.regValue("b").toUint64(), 2u);
}

TEST(CompiledEvaluator, MemWriteSeesPreCommitRegisterData)
{
    // The memory write's data/addr come straight from a register's
    // RegRead node; the write must capture the OLD register value
    // even though the register also commits this cycle.
    netlist::CircuitBuilder b("memorder");
    auto counter = b.reg("counter", 8, 5);
    b.next(counter, counter.read() + b.lit(8, 1));
    auto mem = b.memory("m", 8, 16);
    mem.write(b.lit(8, 3), counter.read(), b.lit(1, 1));
    Netlist nl = b.build();

    Evaluator ref(nl);
    CompiledEvaluator tape(nl);
    ref.step();
    tape.step();
    EXPECT_EQ(ref.memValue(0, 3).toUint64(), 5u);
    EXPECT_EQ(tape.memValue(0, 3).toUint64(), 5u);
    EXPECT_EQ(tape.regValue("counter").toUint64(), 6u);
}

TEST(CompiledEvaluator, SelfNextRegisterIsStable)
{
    netlist::CircuitBuilder b("hold");
    auto r = b.reg("r", 128, 0);
    b.next(r, r.read());
    Netlist nl = b.build();
    // Give it a wide nonzero init through the raw netlist interface.
    CompiledEvaluator tape(nl);
    tape.step();
    tape.step();
    EXPECT_EQ(tape.regValue("r"), BitVector(128));
}

TEST(CompiledEvaluator, WideArithmeticMatchesBitVector)
{
    netlist::CircuitBuilder b("wide");
    auto acc = b.reg("acc", 192, 1);
    auto k = b.lit(BitVector::fromLimbs(
        192, {0x9e3779b97f4a7c15ull, 0xdeadbeefcafef00dull, 0x12345ull}));
    b.next(acc, acc.read() * k + k);
    Netlist nl = b.build();

    Evaluator ref(nl);
    CompiledEvaluator tape(nl);
    for (int i = 0; i < 16; ++i) {
        ref.step();
        tape.step();
        ASSERT_EQ(ref.regValue(0), tape.regValue(0)) << "cycle " << i;
    }
}

TEST(CompiledEvaluator, FactoryBuildsBothModes)
{
    netlist::CircuitBuilder b("even_odd");
    auto counter = b.reg("counter", 16);
    b.next(counter, counter.read() + b.lit(16, 1));
    netlist::Signal is_even = !counter.read().bit(0);
    b.display(is_even, "%d is an even number", {counter.read()});
    b.display(!is_even, "%d is an odd number", {counter.read()});
    b.finish(counter.read() == b.lit(16, 20));
    Netlist nl = b.build();

    auto ref = netlist::makeEvaluator(nl, netlist::EvalMode::Reference);
    auto tape = netlist::makeEvaluator(nl, netlist::EvalMode::Compiled);
    EXPECT_EQ(ref->run(100), SimStatus::Finished);
    EXPECT_EQ(tape->run(100), SimStatus::Finished);
    EXPECT_EQ(ref->cycle(), tape->cycle());
    EXPECT_EQ(ref->displayLog(), tape->displayLog());
    EXPECT_EQ(tape->displayLog().size(), 21u);
    EXPECT_EQ(tape->displayLog()[20], "20 is an even number");
}
