/**
 * @file
 * End-to-end validation of all nine paper benchmarks and the two
 * microbenchmarks: each design carries a generator-computed golden
 * checksum assertion, so "runs to Finished" means functionally
 * correct.  Every design is checked on (1) the reference netlist
 * evaluator, (2) the compiled program on the functional ISA
 * interpreter, (3) the compiled program on the cycle-level machine,
 * and (4) the baseline (Verilator-substitute) serial engine, plus the
 * threaded baseline for a subset.
 */

#include <gtest/gtest.h>

#include "baseline/baseline.hh"
#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "isa/interpreter.hh"
#include "machine/machine.hh"
#include "netlist/evaluator.hh"
#include "runtime/host.hh"

using namespace manticore;

namespace {

struct Case
{
    const char *name;
    netlist::Netlist (*build)(uint64_t);
    uint64_t cycles;
};

class DesignTest : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(DesignTest, ReferenceEvaluatorPassesGolden)
{
    const Case &c = GetParam();
    netlist::Netlist nl = c.build(c.cycles);
    netlist::Evaluator eval(nl);
    auto status = eval.run(c.cycles + 8);
    EXPECT_EQ(status, netlist::SimStatus::Finished)
        << eval.failureMessage();
    EXPECT_EQ(eval.cycle(), c.cycles + 1);
}

TEST_P(DesignTest, BaselineSerialPassesGolden)
{
    const Case &c = GetParam();
    netlist::Netlist nl = c.build(c.cycles);
    baseline::CompiledDesign design(nl);
    baseline::SerialSimulator sim(design);
    auto status = sim.run(c.cycles + 8);
    EXPECT_EQ(status, baseline::SimStatus::Finished)
        << sim.state().failureMessage;
}

TEST_P(DesignTest, BaselineThreadedPassesGolden)
{
    const Case &c = GetParam();
    netlist::Netlist nl = c.build(c.cycles);
    baseline::CompiledDesign design(nl);
    baseline::ThreadedSimulator sim(design, 4);
    auto status = sim.run(c.cycles + 8);
    EXPECT_EQ(status, baseline::SimStatus::Finished)
        << sim.state().failureMessage;
}

TEST_P(DesignTest, CompiledProgramPassesOnInterpreterAndMachine)
{
    const Case &c = GetParam();
    netlist::Netlist nl = c.build(c.cycles);

    compiler::CompileOptions opts;
    opts.config.gridX = 6;
    opts.config.gridY = 6;
    compiler::CompileResult result = compiler::compile(nl, opts);

    {
        isa::Interpreter interp(result.program, opts.config);
        runtime::Host host(result.program, interp.globalMemory());
        host.attach(engine::wrap(interp));
        auto status = interp.run(c.cycles + 8);
        EXPECT_EQ(status, isa::RunStatus::Finished)
            << host.failureMessage();
    }
    {
        machine::Machine m(result.program, opts.config);
        runtime::Host host(result.program, m.globalMemory());
        host.attach(engine::wrap(m));
        auto status = m.run(c.cycles + 8);
        EXPECT_EQ(status, isa::RunStatus::Finished)
            << host.failureMessage();
        EXPECT_EQ(m.perf().vcycles, c.cycles + 1);
    }
}

TEST_P(DesignTest, CompiledWithLptPartitioningAlsoPasses)
{
    const Case &c = GetParam();
    netlist::Netlist nl = c.build(c.cycles);

    compiler::CompileOptions opts;
    opts.config.gridX = 5;
    opts.config.gridY = 5;
    opts.mergeAlgo = compiler::MergeAlgo::Lpt;
    compiler::CompileResult result = compiler::compile(nl, opts);

    machine::Machine m(result.program, opts.config);
    runtime::Host host(result.program, m.globalMemory());
    host.attach(engine::wrap(m));
    EXPECT_EQ(m.run(c.cycles + 8), isa::RunStatus::Finished)
        << host.failureMessage();
}

TEST_P(DesignTest, CompiledWithoutCustomFunctionsAlsoPasses)
{
    const Case &c = GetParam();
    netlist::Netlist nl = c.build(c.cycles);

    compiler::CompileOptions opts;
    opts.config.gridX = 4;
    opts.config.gridY = 4;
    opts.enableCustomFunctions = false;
    compiler::CompileResult result = compiler::compile(nl, opts);

    machine::Machine m(result.program, opts.config);
    runtime::Host host(result.program, m.globalMemory());
    host.attach(engine::wrap(m));
    EXPECT_EQ(m.run(c.cycles + 8), isa::RunStatus::Finished)
        << host.failureMessage();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DesignTest,
    ::testing::Values(Case{"bc", designs::buildBc, 96},
                      Case{"mm", designs::buildMm, 48},
                      Case{"cgra", designs::buildCgra, 96},
                      Case{"vta", designs::buildVta, 300},
                      Case{"rv32r", designs::buildRv32r, 96},
                      Case{"jpeg", designs::buildJpeg, 256},
                      Case{"blur", designs::buildBlur, 96},
                      Case{"mc", designs::buildMc, 96},
                      Case{"noc", designs::buildNoc, 96}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(info.param.name);
    });

TEST(MicroBenchmarks, FifoAllSizesPassGolden)
{
    for (unsigned kib : {1u, 64u, 512u}) {
        netlist::Netlist nl = designs::buildFifoMicro(kib, 64);
        netlist::Evaluator eval(nl);
        EXPECT_EQ(eval.run(80), netlist::SimStatus::Finished)
            << "fifo " << kib << "KiB: " << eval.failureMessage();

        compiler::CompileOptions opts;
        opts.config.gridX = 1;
        opts.config.gridY = 1;
        compiler::CompileResult result = compiler::compile(nl, opts);
        machine::Machine m(result.program, opts.config);
        runtime::Host host(result.program, m.globalMemory());
        host.attach(engine::wrap(m));
        EXPECT_EQ(m.run(80), isa::RunStatus::Finished)
            << "fifo " << kib << "KiB: " << host.failureMessage();
        if (kib > 1) {
            EXPECT_GT(m.perf().cacheHits + m.perf().cacheMisses, 0u)
                << "large fifo should access DRAM";
        }
    }
}

TEST(MicroBenchmarks, RamAllSizesPassGolden)
{
    for (unsigned kib : {1u, 64u, 512u}) {
        netlist::Netlist nl = designs::buildRamMicro(kib, 64);
        netlist::Evaluator eval(nl);
        EXPECT_EQ(eval.run(80), netlist::SimStatus::Finished)
            << "ram " << kib << "KiB: " << eval.failureMessage();

        compiler::CompileOptions opts;
        opts.config.gridX = 1;
        opts.config.gridY = 1;
        compiler::CompileResult result = compiler::compile(nl, opts);
        machine::Machine m(result.program, opts.config);
        runtime::Host host(result.program, m.globalMemory());
        host.attach(engine::wrap(m));
        EXPECT_EQ(m.run(80), isa::RunStatus::Finished)
            << "ram " << kib << "KiB: " << host.failureMessage();
    }
}
