/**
 * @file
 * Baseline (Verilator-substitute) simulator tests: serial engine
 * agrees with the reference evaluator on state; the threaded engine
 * agrees with the serial engine for any thread count; macro-task
 * formation invariants.
 */

#include <gtest/gtest.h>

#include "baseline/baseline.hh"
#include "designs/designs.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"

using namespace manticore;

TEST(Baseline, SerialMatchesReferenceEvaluator)
{
    netlist::Netlist nl = designs::buildCgra(128);
    netlist::Evaluator ref(nl);
    baseline::CompiledDesign design(nl);
    baseline::SerialSimulator sim(design);
    for (int c = 0; c < 64; ++c) {
        ref.step();
        sim.step();
        for (size_t r = 0; r < nl.numRegisters(); ++r) {
            ASSERT_EQ(sim.state().regs[r],
                      ref.regValue(static_cast<uint32_t>(r)).toUint64())
                << "reg " << nl.reg(static_cast<uint32_t>(r)).name
                << " cycle " << c;
        }
    }
}

TEST(Baseline, SerialMatchesCompiledTapeEvaluator)
{
    // Same check as above but against the zero-allocation tape
    // engine via the common factory, so the two compiled execution
    // paths (baseline word ops, netlist tape) cross-validate.
    netlist::Netlist nl = designs::buildCgra(128);
    auto ref = netlist::makeEvaluator(nl, netlist::EvalMode::Compiled);
    baseline::CompiledDesign design(nl);
    baseline::SerialSimulator sim(design);
    for (int c = 0; c < 64; ++c) {
        ref->step();
        sim.step();
        for (size_t r = 0; r < nl.numRegisters(); ++r) {
            ASSERT_EQ(sim.state().regs[r],
                      ref->regValue(static_cast<uint32_t>(r)).toUint64())
                << "reg " << nl.reg(static_cast<uint32_t>(r)).name
                << " cycle " << c;
        }
    }
}

TEST(Baseline, ThreadedMatchesSerialForAllThreadCounts)
{
    netlist::Netlist nl = designs::buildNoc(64);
    baseline::CompiledDesign design(nl);
    baseline::SerialSimulator serial(design);
    serial.run(48);
    for (unsigned threads : {1u, 2u, 3u, 5u}) {
        baseline::ThreadedSimulator mt(design, threads);
        mt.run(48);
        ASSERT_EQ(mt.state().regs, serial.state().regs)
            << threads << " threads";
        ASSERT_EQ(mt.state().mems, serial.state().mems);
        EXPECT_EQ(mt.cycle(), serial.cycle());
    }
}

TEST(Baseline, DetectsAssertionFailures)
{
    netlist::CircuitBuilder b("bad");
    auto c = b.reg("c", 8);
    b.next(c, c.read() + b.lit(8, 1));
    b.assertAlways(b.lit(1, 1), c.read() < b.lit(8, 5), "c under 5");
    netlist::Netlist nl = b.build();
    baseline::CompiledDesign design(nl);
    baseline::SerialSimulator sim(design);
    EXPECT_EQ(sim.run(100), baseline::SimStatus::AssertFailed);
    EXPECT_NE(sim.state().failureMessage.find("c under 5"),
              std::string::npos);
}

TEST(Baseline, CollectsDisplays)
{
    netlist::CircuitBuilder b("say");
    auto c = b.reg("c", 8);
    b.next(c, c.read() + b.lit(8, 1));
    b.display(c.read() == b.lit(8, 2), "c hit %d", {c.read()});
    b.finish(c.read() == b.lit(8, 4));
    baseline::CompiledDesign design(b.build());
    baseline::SerialSimulator sim(design);
    EXPECT_EQ(sim.run(100), baseline::SimStatus::Finished);
    ASSERT_EQ(sim.state().displayLog.size(), 1u);
    EXPECT_EQ(sim.state().displayLog[0], "c hit 2");
}

TEST(Baseline, MacroTaskCountScalesWithThreads)
{
    netlist::Netlist nl = designs::buildMm(16);
    baseline::CompiledDesign design(nl);
    baseline::ThreadedSimulator one(design, 1);
    baseline::ThreadedSimulator four(design, 4);
    EXPECT_GT(four.numTasks(), one.numTasks());
    EXPECT_EQ(one.numTasks(), design.numLevels());
}

TEST(Baseline, RejectsWideDesigns)
{
    netlist::CircuitBuilder b("wide");
    auto r = b.reg("r", 80);
    b.next(r, r.read());
    netlist::Netlist nl = b.build();
    EXPECT_DEATH(baseline::CompiledDesign design(nl),
                 "baseline engine supports");
}
