/**
 * @file
 * Unified engine-layer tests: every engine is creatable through the
 * registry by name and behaves identically through the
 * engine::Engine interface — same probes, same display transcript,
 * same finish cycle — and batched step(n) is cycle-exact with n
 * calls of step(1) on every engine.  Also covers the satellite
 * guarantees: mode-name round trips, handle-based inputs, and the
 * name-listing diagnostics for unknown engines / inputs / signals.
 */

#include <gtest/gtest.h>

#include "designs/designs.hh"
#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "isa/interpreter.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"

using namespace manticore;

namespace {

/** Every engine the registry reports runnable on this host — derived
 *  from the registry itself so a new engine is covered for free. */
std::vector<std::string>
availableEngines()
{
    std::vector<std::string> names;
    for (const engine::EngineInfo &info : engine::list())
        if (info.available)
            names.push_back(info.name);
    return names;
}

const std::vector<std::string> kAllEngines = availableEngines();

/** Closed self-driving design: a cycle counter, an accumulator, one
 *  $display, and a $finish at cycle `finish_at` + 1. */
netlist::Netlist
counterDesign(uint64_t finish_at)
{
    netlist::CircuitBuilder b("engine_counter");
    auto cyc = b.reg("cyc", 16);
    b.next(cyc, cyc.read() + b.lit(16, 1));
    auto acc = b.reg("acc", 32);
    b.next(acc, acc.read() + cyc.read().zext(32));
    b.display(cyc.read() == b.lit(16, 3), "acc=%d", {acc.read()});
    b.finish(cyc.read() == b.lit(16, finish_at));
    return b.build();
}

/** Open design: sum accumulates the free input x every cycle. */
netlist::Netlist
adderDesign()
{
    netlist::CircuitBuilder b("engine_adder");
    auto x = b.input("x", 16);
    auto sum = b.reg("sum", 32);
    b.next(sum, sum.read() + x.zext(32));
    return b.build();
}

engine::CreateOptions
smallGrid()
{
    engine::CreateOptions options;
    options.compile.config.gridX = options.compile.config.gridY = 2;
    options.eval.numThreads = 2;
    return options;
}

} // namespace

TEST(EngineRegistry, ListsAllEightEngines)
{
    EXPECT_EQ(engine::list().size(), 8u);
    for (const std::string &name : kAllEngines) {
        const engine::EngineInfo *info = engine::find(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_EQ(name, info->name);
    }
    EXPECT_EQ(engine::find("netlist.bogus"), nullptr);
    EXPECT_EQ(engine::find(""), nullptr);
    EXPECT_EQ(engine::names().size(), engine::list().size());

    // Availability reporting: only the AOT engines have a host
    // dependency; every other engine is unconditionally available.
    // Whichever way the toolchain probe went, the note says why.
    for (const engine::EngineInfo &info : engine::list()) {
        if (info.caps & engine::cap::kAotCompiled) {
            EXPECT_FALSE(info.availabilityNote.empty()) << info.name;
        } else {
            EXPECT_TRUE(info.available) << info.name;
            EXPECT_TRUE(info.availabilityNote.empty()) << info.name;
        }
    }
}

TEST(EngineRegistry, ModeNamesRoundTrip)
{
    using netlist::EvalMode;
    for (EvalMode mode : {EvalMode::Reference, EvalMode::Compiled,
                          EvalMode::Parallel, EvalMode::Aot}) {
        EvalMode parsed;
        ASSERT_TRUE(netlist::parseEvalMode(netlist::evalModeName(mode),
                                           parsed));
        EXPECT_EQ(parsed, mode);
    }
    using isa::ExecMode;
    for (ExecMode mode : {ExecMode::Reference, ExecMode::Tape}) {
        ExecMode parsed;
        ASSERT_TRUE(
            isa::parseExecMode(isa::execModeName(mode), parsed));
        EXPECT_EQ(parsed, mode);
    }
    netlist::EvalMode em;
    isa::ExecMode xm;
    EXPECT_FALSE(netlist::parseEvalMode("Tape", em));
    EXPECT_FALSE(netlist::parseEvalMode("", em));
    EXPECT_FALSE(isa::parseExecMode("parallel", xm));

    // Registry names round-trip through create()->name(), and the
    // netlist-level names are exactly "netlist." + evalModeName —
    // except netlist.parallel.aot, a registry-only variant (EvalMode
    // Parallel plus EvalOptions::aot), which has no EvalMode of its
    // own by design.
    for (const engine::EngineInfo &info : engine::list()) {
        if (!info.netlistLevel)
            continue;
        if (std::string(info.name) == "netlist.parallel.aot")
            continue;
        netlist::EvalMode mode;
        ASSERT_TRUE(netlist::parseEvalMode(
            std::string(info.name).substr(8), mode))
            << info.name;
        EXPECT_EQ(std::string("netlist.") + netlist::evalModeName(mode),
                  info.name);
    }
}

TEST(EngineRegistry, CreatesEveryEngineAndRunsToTheSameFinish)
{
    netlist::Netlist design = counterDesign(20);

    uint64_t finish_cycle = 0;
    std::vector<std::string> golden_log;
    for (const std::string &name : kAllEngines) {
        auto eng = engine::create(name, design, smallGrid());
        ASSERT_NE(eng, nullptr);
        EXPECT_EQ(name, eng->name());
        EXPECT_TRUE(eng->has(engine::cap::kProbes)) << name;
        EXPECT_TRUE(eng->has(engine::cap::kDisplayLog)) << name;

        engine::RunResult res = eng->step(100);
        EXPECT_EQ(res.status, engine::Status::Finished) << name;
        EXPECT_EQ(res.cycles, eng->cycle()) << name;

        if (finish_cycle == 0) { // first engine sets the expectation
            finish_cycle = eng->cycle();
            golden_log = eng->displayLog();
            EXPECT_GT(finish_cycle, 0u);
            ASSERT_EQ(golden_log.size(), 1u);
        } else {
            EXPECT_EQ(eng->cycle(), finish_cycle) << name;
            EXPECT_EQ(eng->displayLog(), golden_log) << name;
        }

        // Terminal engines step no further.
        engine::RunResult after = eng->step(5);
        EXPECT_EQ(after.cycles, 0u) << name;
        EXPECT_EQ(after.status, engine::Status::Finished) << name;

        // Every engine reports at least a cycle counter.
        bool has_cycles = false;
        for (const engine::Stat &stat : eng->stats())
            if (stat.name == "cycles" && stat.value == finish_cycle)
                has_cycles = true;
        EXPECT_TRUE(has_cycles) << name;
    }
}

TEST(Engine, ProbesAgreeAcrossAllEnginesEveryCycle)
{
    netlist::Netlist design = counterDesign(60);
    auto golden =
        engine::create("netlist.reference", design, smallGrid());
    engine::ProbeHandle cyc = golden->probe("cyc");
    engine::ProbeHandle acc = golden->probe("acc");

    for (const std::string &name : kAllEngines) {
        if (name == "netlist.reference")
            continue;
        auto subject = engine::create(name, design, smallGrid());
        engine::ProbeHandle s_cyc = subject->probe("cyc");
        engine::ProbeHandle s_acc = subject->probe("acc");
        // Fresh golden per pairing (the loop below advances it).
        auto gold = engine::create("netlist.reference", design, {});
        for (int v = 0; v < 40; ++v) {
            subject->step(1);
            gold->step(1);
            EXPECT_EQ(subject->read(s_cyc), gold->read(cyc))
                << name << " at cycle " << v;
            EXPECT_EQ(subject->read(s_acc), gold->read(acc))
                << name << " at cycle " << v;
        }
    }
}

TEST(Engine, StepNIsCycleExactWithRepeatedStep1)
{
    // Odd chunk sizes so batches straddle the finish cycle; the
    // lockstep engine steps 1 cycle at a time.
    netlist::Netlist design = counterDesign(20);
    for (const std::string &name : kAllEngines) {
        auto batched = engine::create(name, design, smallGrid());
        auto stepped = engine::create(name, design, smallGrid());
        uint64_t advanced_total = 0;
        for (uint64_t chunk : {1u, 3u, 7u, 50u, 5u}) {
            engine::RunResult res = batched->step(chunk);
            advanced_total += res.cycles;
            for (uint64_t i = 0; i < chunk; ++i)
                stepped->step(1);
            EXPECT_EQ(batched->cycle(), stepped->cycle())
                << name << " chunk " << chunk;
            EXPECT_EQ(batched->status(), stepped->status())
                << name << " chunk " << chunk;
            for (size_t p = 0; p < batched->numProbes(); ++p)
                EXPECT_EQ(
                    batched->read(static_cast<engine::ProbeHandle>(p)),
                    stepped->read(static_cast<engine::ProbeHandle>(p)))
                    << name << " chunk " << chunk << " probe "
                    << batched->probeName(
                           static_cast<engine::ProbeHandle>(p));
        }
        EXPECT_EQ(batched->status(), engine::Status::Finished) << name;
        EXPECT_EQ(advanced_total, batched->cycle()) << name;
        EXPECT_EQ(batched->displayLog(), stepped->displayLog()) << name;
    }
}

TEST(Engine, BoundInputsDriveTheNetlistEngines)
{
    netlist::Netlist design = adderDesign();
    std::vector<std::string> netlist_engines = {
        "netlist.reference", "netlist.compiled", "netlist.parallel"};
    if (engine::find("netlist.aot")->available)
        netlist_engines.push_back("netlist.aot");
    for (const std::string &name : netlist_engines) {
        auto eng = engine::create(name, design, smallGrid());
        ASSERT_TRUE(eng->has(engine::cap::kInputs)) << name;
        engine::InputHandle x = eng->bindInput("x");
        engine::ProbeHandle sum = eng->probe("sum");

        uint64_t expect = 0;
        for (uint16_t v : {7, 1, 0, 900, 43}) {
            eng->setInput(x, BitVector(16, v));
            eng->step(1);
            expect += v;
            EXPECT_EQ(eng->read(sum).toUint64(), expect) << name;
        }
    }

    // ISA-level engines execute closed compiled programs: no inputs.
    auto mach = engine::create("machine", counterDesign(20), smallGrid());
    EXPECT_FALSE(mach->has(engine::cap::kInputs));
}

TEST(Engine, SessionRunsTheQuickstartFlow)
{
    engine::Session sim(counterDesign(20), "machine", smallGrid());
    std::vector<std::string> lines;
    sim->setDisplaySink(
        [&](const std::string &line) { lines.push_back(line); });
    engine::RunResult res = sim.run(1'000);
    EXPECT_EQ(res.status, engine::Status::Finished);
    EXPECT_EQ(lines.size(), 1u);
    EXPECT_EQ(sim.engine().displayLog(), lines);
}

TEST(Engine, WrappedBorrowedEnginesShareStateWithTheWrapped)
{
    // wrap() adapts an engine the caller owns without taking it over:
    // stepping through the adapter advances the wrapped engine.
    netlist::Netlist design = counterDesign(20);
    netlist::Evaluator eval(design);
    engine::NetlistEngine eng = engine::wrap(eval, design);
    EXPECT_STREQ(eng.name(), "netlist.reference");
    eng.step(4);
    EXPECT_EQ(eval.cycle(), 4u);
    EXPECT_EQ(eng.read(eng.probe("cyc")).toUint64(), 4u);
}

TEST(EngineDiagnostics, UnknownEngineListsTheRegistry)
{
    netlist::Netlist design = counterDesign(20);
    EXPECT_EXIT(engine::create("netlist.bogus", design),
                ::testing::ExitedWithCode(1),
                "registered engines:.*netlist.parallel.*machine");
    isa::Program program;
    isa::MachineConfig config;
    EXPECT_EXIT(engine::create("turbo", program, config),
                ::testing::ExitedWithCode(1), "no such engine: turbo");
}

TEST(EngineDiagnostics, UnknownInputAndSignalListValidNames)
{
    netlist::Netlist design = adderDesign();
    auto eng = engine::create("netlist.reference", design);
    EXPECT_EXIT(eng->bindInput("y"), ::testing::ExitedWithCode(1),
                "no such input: y.*valid inputs: x");
    EXPECT_EXIT(eng->probe("bogus"), ::testing::ExitedWithCode(1),
                "no such signal: bogus.*valid signals: sum");

    // The underlying evaluators' name-based accessors carry the same
    // name-listing diagnostics.
    netlist::Evaluator eval(design);
    EXPECT_EXIT(eval.setInput("y", BitVector(16, 0)),
                ::testing::ExitedWithCode(1),
                "no such input: y.*valid inputs: x");
    EXPECT_EXIT(eval.regValue("bogus"), ::testing::ExitedWithCode(1),
                "no such register: bogus.*valid registers: sum");
}

TEST(EngineDiagnostics, CapabilityViolationsNameTheEngine)
{
    // A borrowed interpreter without a signal table has no probes and
    // no display log; both calls name the engine and the capability.
    netlist::Netlist design = counterDesign(20);
    compiler::CompileOptions copts;
    copts.config.gridX = copts.config.gridY = 2;
    compiler::CompileResult cr = compiler::compile(design, copts);
    auto interp = isa::makeInterpreter(cr.program, copts.config,
                                       isa::ExecMode::Reference);
    engine::IsaEngine eng = engine::wrap(*interp);
    EXPECT_FALSE(eng.has(engine::cap::kProbes));
    EXPECT_EXIT(eng.probe("cyc"), ::testing::ExitedWithCode(1),
                "isa.reference does not support signal probes");
    EXPECT_EXIT(eng.displayLog(), ::testing::ExitedWithCode(1),
                "isa.reference does not support a display log");
}

TEST(Engine, RealDesignDifferentialThroughTheInterface)
{
    // The existing differential suites run engine-family harnesses;
    // this runs a real self-checking design through the unified
    // interface on every engine: same finish, zero divergence
    // against the reference evaluator.
    netlist::Netlist design = designs::buildMm(48);
    engine::CreateOptions options;
    options.compile.config.gridX = options.compile.config.gridY = 4;
    options.eval.numThreads = 3;

    for (const std::string &name : kAllEngines) {
        if (name == "netlist.reference")
            continue;
        auto golden = engine::create("netlist.reference", design);
        auto subject = engine::create(name, design, options);
        engine::CrossCheck cc(*golden, *subject);
        EXPECT_GT(cc.numPairedSignals(), 0u);
        engine::RunResult res = cc.run(48 + 8);
        EXPECT_EQ(res.status, engine::Status::Finished)
            << name << ": " << cc.divergence();
        EXPECT_FALSE(cc.diverged()) << name << ": " << cc.divergence();
    }
}
