/**
 * @file
 * Tests for the two new AOT variants of PR 10: the laned (ensemble)
 * AOT codegen behind "netlist.aot" with lanes > 1, and the
 * per-partition AOT objects behind "netlist.parallel.aot".
 *
 * The laned half reuses the ensemble contract: every lane of an
 * N-lane AOT run must be indistinguishable from N independent scalar
 * reference runs under the same per-lane stimulus
 * (engine::EnsembleCrossCheck, N in {1, 2, 7, 16}).  The parallel
 * half checks determinism across thread (and hence partition)
 * counts, the per-partition object-cache protocol (warm hit, one
 * corrupted object rebuilds exactly one object), the graceful
 * per-partition fallback when no toolchain works, and the strict
 * factory that refuses instead.  Labelled "aot" in CMake so both
 * sanitized configs run it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "designs/designs.hh"
#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "netlist/aot.hh"
#include "netlist/builder.hh"
#include "netlist/compiled_evaluator.hh"
#include "random_circuit.hh"

using namespace manticore;
using netlist::AotParallelEvaluator;
using netlist::CompiledEvaluator;
using netlist::EvalOptions;
using netlist::EvaluatorBase;
using netlist::MemId;
using netlist::Netlist;
using netlist::ParallelCompiledEvaluator;
using netlist::RegId;
using netlist::SimStatus;
using manticore::testing::RandomCircuit;
using manticore::testing::randomValue;

namespace {

bool
hostHasToolchain()
{
    return netlist::aotToolchain().ok;
}

/** Per-test cache directory under gtest's temp dir (stable across
 *  runs, wiped here) — same convention as test_aot.cc. */
std::string
freshCacheDir(const std::string &tag)
{
    std::string dir =
        ::testing::TempDir() + "manticore-aot-par-test-" + tag;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

EvalOptions
parallelAotOptions(const std::string &cache_dir, unsigned threads = 3)
{
    EvalOptions options;
    options.aot = true;
    options.aotCacheDir = cache_dir;
    options.numThreads = threads;
    return options;
}

/** Step `a` (the trusted engine) and `b` (the subject) in lockstep
 *  over any EvaluatorBase pair, asserting identical architectural
 *  state every cycle.  A generic twin of test_aot.cc's runLockstep,
 *  which is typed to the serial CompiledEvaluator family. */
void
runLockstep(const Netlist &nl, EvaluatorBase &a, EvaluatorBase &b,
            const std::vector<unsigned> &input_widths, uint64_t seed,
            unsigned cycles)
{
    Rng drive(seed ^ 0xa07a07a07ull);
    for (unsigned c = 0; c < cycles; ++c) {
        for (size_t i = 0; i < input_widths.size(); ++i) {
            BitVector v = randomValue(drive, input_widths[i]);
            std::string name = "in" + std::to_string(i);
            a.setInput(name, v);
            b.setInput(name, v);
        }
        SimStatus sa = a.step();
        SimStatus sb = b.step();
        ASSERT_EQ(sa, sb) << "status diverged at cycle " << c;
        ASSERT_EQ(a.failureMessage(), b.failureMessage());
        for (size_t r = 0; r < nl.numRegisters(); ++r)
            ASSERT_EQ(a.regValue(static_cast<RegId>(r)),
                      b.regValue(static_cast<RegId>(r)))
                << "reg " << nl.reg(static_cast<RegId>(r)).name
                << " diverged at cycle " << c;
        for (size_t m = 0; m < nl.numMemories(); ++m)
            for (unsigned addr = 0;
                 addr < nl.memory(static_cast<MemId>(m)).depth; ++addr)
                ASSERT_EQ(a.memValue(static_cast<MemId>(m), addr),
                          b.memValue(static_cast<MemId>(m), addr))
                    << "mem " << m << "[" << addr
                    << "] diverged at cycle " << c;
        if (sa != SimStatus::Ok)
            break;
    }
    ASSERT_EQ(a.displayLog(), b.displayLog());
}

/** Deterministic per-(seed, lane, cycle) stimulus stream — the
 *  test_ensemble.cc convention, so the ensemble lane and its scalar
 *  golden see byte-identical drives. */
Rng
laneRng(uint64_t seed, unsigned lane, uint64_t cycle)
{
    return Rng(seed * 0x9e3779b97f4a7c15ull + lane * 1000003ull +
               cycle * 7919ull);
}

struct LaneGoldens
{
    std::vector<std::unique_ptr<engine::Engine>> owned;
    std::vector<engine::Engine *> ptrs;
};

LaneGoldens
makeGoldens(const Netlist &nl, unsigned lanes)
{
    LaneGoldens g;
    for (unsigned l = 0; l < lanes; ++l) {
        g.owned.push_back(engine::create("netlist.reference", nl));
        g.ptrs.push_back(g.owned.back().get());
    }
    return g;
}

/** The ensemble differential from test_ensemble.cc, pointed at the
 *  AOT engines: every lane of an N-lane AOT run of a random netlist
 *  must match an independent scalar reference run under the same
 *  per-lane random stimulus. */
void
runEnsembleDifferential(const std::string &subject_name, unsigned lanes,
                        uint64_t seed, uint64_t horizon,
                        const std::string &cache_dir)
{
    RandomCircuit rc(seed);
    Netlist nl = rc.build();

    engine::CreateOptions sopts;
    sopts.lanes = lanes;
    sopts.eval.numThreads = 3;
    sopts.eval.aotCacheDir = cache_dir;
    auto subject = engine::create(subject_name, nl, sopts);
    EXPECT_EQ(subject->lanes(), lanes);
    // The adapter only advertises kAotCompiled when the compiled
    // object(s) are actually installed — so this doubles as an
    // "it really is running AOT code" assertion.
    EXPECT_TRUE(subject->has(engine::cap::kAotCompiled))
        << subject_name << " lanes=" << lanes
        << ": fell back to the interpreted tape";

    LaneGoldens goldens = makeGoldens(nl, lanes);

    const std::vector<unsigned> &widths = rc.inputWidths();
    std::unordered_map<engine::Engine *,
                       std::vector<engine::InputHandle>>
        handles;
    auto bindAll = [&](engine::Engine &e) {
        std::vector<engine::InputHandle> hs;
        for (size_t i = 0; i < widths.size(); ++i)
            hs.push_back(e.bindInput("in" + std::to_string(i)));
        handles[&e] = std::move(hs);
    };
    bindAll(*subject);
    for (engine::Engine *g : goldens.ptrs)
        bindAll(*g);

    engine::EnsembleCrossCheck cc(goldens.ptrs, *subject);
    cc.setStimulus([&](engine::Engine &e, unsigned lane,
                       uint64_t cycle) {
        Rng rng = laneRng(seed, lane, cycle);
        const auto &hs = handles.at(&e);
        for (size_t i = 0; i < hs.size(); ++i)
            engine::driveLane(e, hs[i], lane,
                              randomValue(rng, widths[i]));
    });
    cc.run(horizon);
    EXPECT_FALSE(cc.diverged())
        << subject_name << " lanes=" << lanes << " seed=" << seed
        << ": " << cc.divergence();

    for (unsigned l = 0; l < lanes; ++l) {
        EXPECT_EQ(subject->laneDisplayLog(l),
                  goldens.ptrs[l]->displayLog())
            << subject_name << " lanes=" << lanes << " seed=" << seed
            << " lane=" << l << ": display transcripts differ";
        EXPECT_EQ(subject->laneCycle(l), goldens.ptrs[l]->cycle());
        EXPECT_EQ(subject->laneStatus(l), goldens.ptrs[l]->status());
    }
}

} // namespace

// --------------------------------------------------------------------
// Laned (ensemble) AOT codegen.
// --------------------------------------------------------------------

TEST(AotEnsemble, RandomDifferentialEveryLaneCount)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    // One cache dir for the whole sweep: each (engine, lane-width,
    // seed) combination emits distinct source, so they coexist and
    // later iterations also exercise cold-build-next-to-warm-entries.
    std::string cache = freshCacheDir("ensemble");
    for (const std::string &name :
         {std::string("netlist.aot"), std::string("netlist.parallel.aot")})
        for (unsigned lanes : {1u, 2u, 7u, 16u})
            runEnsembleDifferential(name, lanes, 23, 120, cache);
}

// --------------------------------------------------------------------
// Per-partition AOT objects behind netlist.parallel.aot.
// --------------------------------------------------------------------

TEST(AotParallelEvaluator, DeterministicAcrossThreadAndPartitionCounts)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    // numThreads bounds the partition count, so sweeping it sweeps
    // both: every configuration must match the serial interpreted
    // tape cycle-for-cycle on a real design (mm self-checks via
    // $display and asserts).
    std::string cache = freshCacheDir("threads");
    Netlist nl = designs::buildMm(64);
    for (unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("numThreads " + std::to_string(threads));
        CompiledEvaluator tape(nl);
        AotParallelEvaluator aot(nl, parallelAotOptions(cache, threads));
        ASSERT_TRUE(aot.usingAot()) << "fell back to the interpreter";
        EXPECT_EQ(aot.aotPartitions(), aot.numProcesses());
        runLockstep(nl, tape, aot, {}, threads, 80);
    }
}

TEST(AotParallelEvaluator, SecondConstructionHitsEveryPartitionObject)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    std::string cache = freshCacheDir("hit");
    Netlist nl = designs::buildMm(64);
    EvalOptions options = parallelAotOptions(cache);

    AotParallelEvaluator cold(nl, options);
    ASSERT_TRUE(cold.usingAot());
    EXPECT_FALSE(cold.cacheHit());
    // One combined compile per partition on a cold start.
    EXPECT_EQ(cold.compilerInvocations(), cold.numProcesses());

    AotParallelEvaluator warm(nl, options);
    ASSERT_TRUE(warm.usingAot());
    EXPECT_TRUE(warm.cacheHit());
    EXPECT_EQ(warm.compilerInvocations(), 0u);
    ASSERT_EQ(warm.numProcesses(), cold.numProcesses());
    for (size_t p = 0; p < warm.numProcesses(); ++p) {
        EXPECT_EQ(warm.partitionKey(p), cold.partitionKey(p));
        EXPECT_EQ(warm.partitionObject(p), cold.partitionObject(p));
    }

    CompiledEvaluator tape(nl);
    runLockstep(nl, tape, warm, {}, 7, 48);
}

TEST(AotParallelEvaluator, CorruptedPartitionObjectRebuildsOnlyItself)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    std::string cache = freshCacheDir("corrupt");
    Netlist nl = designs::buildMm(64);
    EvalOptions options = parallelAotOptions(cache);

    std::string victim;
    size_t parts = 0;
    {
        AotParallelEvaluator cold(nl, options);
        ASSERT_TRUE(cold.usingAot());
        parts = cold.numProcesses();
        victim = cold.partitionObject(parts - 1);
    }
    // Per-partition keys hash the partition's own source, so garbage
    // in ONE object must trigger exactly ONE recompile — the embedded
    // manticore_aot_key check rejects it after dlopen.
    ASSERT_GE(parts, 2u) << "mm no longer partitions; pick a bigger "
                            "design for this test";
    {
        std::FILE *f = std::fopen(victim.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not an ELF object", f);
        std::fclose(f);
    }
    AotParallelEvaluator rebuilt(nl, options);
    ASSERT_TRUE(rebuilt.usingAot());
    EXPECT_FALSE(rebuilt.cacheHit());
    EXPECT_EQ(rebuilt.compilerInvocations(), 1u);

    CompiledEvaluator tape(nl);
    runLockstep(nl, tape, rebuilt, {}, 11, 48);
}

TEST(AotParallelEvaluator, MissingCompilerFallsBackToTheInterpretedTape)
{
    // Direct construction with an unusable compiler must degrade
    // gracefully: every partition falls back, results are identical
    // to the plain parallel engine.
    Netlist nl = designs::buildMm(64);
    EvalOptions options = parallelAotOptions(freshCacheDir("fallback"));
    options.aotCompiler = "/nonexistent/manticore-bogus-c++";

    AotParallelEvaluator fallback(nl, options);
    EXPECT_FALSE(fallback.usingAot());
    EXPECT_EQ(fallback.aotPartitions(), 0u);
    EXPECT_EQ(fallback.compilerInvocations(), 0u);
    EXPECT_FALSE(fallback.cacheHit());
    for (size_t p = 0; p < fallback.numProcesses(); ++p)
        EXPECT_TRUE(fallback.partitionObject(p).empty());

    EvalOptions plain;
    plain.numThreads = options.numThreads;
    ParallelCompiledEvaluator interpreted(nl, plain);
    runLockstep(nl, interpreted, fallback, {}, 13, 48);
}

TEST(AotParallelEvaluator, FactoryIsStrictAboutAMissingToolchain)
{
    // makeEvaluator / the registry are the "asked for AOT by name"
    // path: no silent fallback, a fatal naming the probed toolchain.
    Netlist nl = designs::buildMm(64);
    EvalOptions options = parallelAotOptions(freshCacheDir("strict"));
    options.aotCompiler = "/nonexistent/manticore-bogus-c++";
    EXPECT_EXIT(
        netlist::makeEvaluator(nl, netlist::EvalMode::Parallel, options),
        ::testing::ExitedWithCode(1),
        "netlist.parallel.aot needs a working host C\\+\\+ compiler");
}

TEST(AotParallelEngine, RegistryReportsAvailabilityAndStats)
{
    const engine::EngineInfo *info = engine::find("netlist.parallel.aot");
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->netlistLevel);
    EXPECT_EQ(info->available, hostHasToolchain());
    EXPECT_FALSE(info->availabilityNote.empty());

    if (!hostHasToolchain())
        GTEST_SKIP() << info->availabilityNote;
    engine::CreateOptions copts;
    copts.eval.aotCacheDir = freshCacheDir("engine");
    auto eng =
        engine::create("netlist.parallel.aot", designs::buildMm(64), copts);
    EXPECT_STREQ(eng->name(), "netlist.parallel.aot");
    EXPECT_TRUE(eng->has(engine::cap::kAotCompiled));
    eng->step(16);
    bool saw_active = false, saw_parts = false;
    for (const engine::Stat &s : eng->stats()) {
        if (s.name == "aot_active") {
            saw_active = true;
            EXPECT_EQ(s.value, 1u);
        }
        if (s.name == "aot_partitions") {
            saw_parts = true;
            EXPECT_GE(s.value, 1u);
        }
    }
    EXPECT_TRUE(saw_active);
    EXPECT_TRUE(saw_parts);
}
