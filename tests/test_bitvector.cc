/**
 * @file
 * BitVector unit and property tests: arithmetic against native 64-bit
 * references across widths, structural ops (slice/concat/extend), and
 * invariants (mask discipline, hashing, string forms).
 */

#include <gtest/gtest.h>

#include "support/bitvector.hh"
#include "support/rng.hh"

using manticore::BitVector;
using manticore::Rng;

namespace {

uint64_t
maskOf(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

class BitVectorWidths : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST(BitVector, ConstructAndRead)
{
    BitVector v(16, 0xabcd);
    EXPECT_EQ(v.width(), 16u);
    EXPECT_EQ(v.toUint64(), 0xabcdu);
    EXPECT_TRUE(v.bit(0));
    EXPECT_FALSE(v.bit(1));
    EXPECT_TRUE(v.bit(15));
}

TEST(BitVector, TruncatesToWidth)
{
    BitVector v(4, 0xff);
    EXPECT_EQ(v.toUint64(), 0xfu);
}

TEST(BitVector, OnesAndZero)
{
    EXPECT_TRUE(BitVector(80).isZero());
    BitVector ones = BitVector::ones(80);
    EXPECT_FALSE(ones.isZero());
    for (unsigned i = 0; i < 80; ++i)
        EXPECT_TRUE(ones.bit(i));
    EXPECT_EQ(ones.bitNot(), BitVector(80));
}

TEST(BitVector, FromBinaryString)
{
    BitVector v = BitVector::fromBinaryString("1010");
    EXPECT_EQ(v.width(), 4u);
    EXPECT_EQ(v.toUint64(), 10u);
}

TEST(BitVector, ToStringHex)
{
    EXPECT_EQ(BitVector(16, 0x00ff).toString(), "16'h00ff");
    EXPECT_EQ(BitVector(4, 0xa).toString(), "4'ha");
    EXPECT_EQ(BitVector(5, 0x1f).toString(), "5'h1f");
}

TEST_P(BitVectorWidths, ArithmeticMatchesNativeReference)
{
    unsigned width = GetParam();
    Rng rng(width * 977 + 5);
    for (int trial = 0; trial < 200; ++trial) {
        uint64_t a = rng.next() & maskOf(width);
        uint64_t b = rng.next() & maskOf(width);
        BitVector va(width, a), vb(width, b);
        EXPECT_EQ(va.add(vb).toUint64(), (a + b) & maskOf(width));
        EXPECT_EQ(va.sub(vb).toUint64(), (a - b) & maskOf(width));
        EXPECT_EQ(va.mul(vb).toUint64(), (a * b) & maskOf(width));
        EXPECT_EQ(va.bitAnd(vb).toUint64(), a & b);
        EXPECT_EQ(va.bitOr(vb).toUint64(), a | b);
        EXPECT_EQ(va.bitXor(vb).toUint64(), a ^ b);
        EXPECT_EQ(va.bitNot().toUint64(), ~a & maskOf(width));
        EXPECT_EQ(va.eq(vb).toUint64(), a == b ? 1u : 0u);
        EXPECT_EQ(va.ult(vb).toUint64(), a < b ? 1u : 0u);
        unsigned sh = static_cast<unsigned>(rng.below(width + 4));
        uint64_t shl_ref = sh >= width ? 0 : (a << sh) & maskOf(width);
        uint64_t shr_ref = sh >= width ? 0 : a >> sh;
        EXPECT_EQ(va.shl(sh).toUint64(), shl_ref);
        EXPECT_EQ(va.lshr(sh).toUint64(), shr_ref);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWidths,
                         ::testing::Values(1u, 3u, 8u, 16u, 17u, 31u,
                                           32u, 33u, 48u, 63u, 64u));

TEST(BitVector, WideArithmeticCarriesAcrossLimbs)
{
    // (2^64 - 1) + 1 = 2^64 within a 96-bit vector.
    BitVector a = BitVector::ones(96).slice(0, 64).resize(96);
    BitVector one(96, 1);
    BitVector sum = a.add(one);
    EXPECT_FALSE(sum.bit(63));
    EXPECT_TRUE(sum.bit(64));
    EXPECT_EQ(sum.sub(one), a);
}

TEST(BitVector, WideMultiply)
{
    // (2^40 + 3) * (2^30 + 5) mod 2^96.
    BitVector a(96, 3);
    a.setBit(40, true);
    BitVector b(96, 5);
    b.setBit(30, true);
    BitVector p = a.mul(b);
    // = 2^70 + 5*2^40 + 3*2^30 + 15
    BitVector expect(96, 15);
    expect.setBit(70, true);
    expect = expect.add(BitVector(96, 5).shl(40));
    expect = expect.add(BitVector(96, 3).shl(30));
    EXPECT_EQ(p, expect);
}

TEST(BitVector, SliceConcatRoundTrip)
{
    Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        unsigned width = 2 + rng.below(100);
        BitVector v(width);
        for (unsigned i = 0; i < width; ++i)
            if (rng.chance(0.5))
                v.setBit(i, true);
        unsigned cut = 1 + rng.below(width - 1);
        BitVector lo = v.slice(0, cut);
        BitVector hi = v.slice(cut, width - cut);
        EXPECT_EQ(hi.concat(lo), v) << "width " << width << " cut "
                                    << cut;
    }
}

TEST(BitVector, SignedOps)
{
    BitVector neg2(8, 0xfe);
    BitVector pos3(8, 3);
    EXPECT_EQ(neg2.slt(pos3).toUint64(), 1u);
    EXPECT_EQ(pos3.slt(neg2).toUint64(), 0u);
    EXPECT_EQ(neg2.sext(16).toUint64(), 0xfffeu);
    EXPECT_EQ(pos3.sext(16).toUint64(), 3u);
    EXPECT_EQ(neg2.resize(16).toUint64(), 0xfeu);
}

TEST(BitVector, Reductions)
{
    EXPECT_EQ(BitVector(33, 0).reduceOr().toUint64(), 0u);
    EXPECT_EQ(BitVector(33, 4).reduceOr().toUint64(), 1u);
    EXPECT_EQ(BitVector::ones(33).reduceAnd().toUint64(), 1u);
    EXPECT_EQ(BitVector(33, 1).reduceAnd().toUint64(), 0u);
    EXPECT_EQ(BitVector(8, 0b1011).reduceXor().toUint64(), 1u);
    EXPECT_EQ(BitVector(8, 0b1010).reduceXor().toUint64(), 0u);
}

TEST(BitVector, HashDistinguishesWidthAndValue)
{
    EXPECT_NE(BitVector(8, 1).hash(), BitVector(9, 1).hash());
    EXPECT_NE(BitVector(8, 1).hash(), BitVector(8, 2).hash());
    EXPECT_EQ(BitVector(8, 1).hash(), BitVector(8, 1).hash());
}

TEST(BitVector, FitsUint64)
{
    BitVector v(100, 7);
    EXPECT_TRUE(v.fitsUint64());
    v.setBit(77, true);
    EXPECT_FALSE(v.fitsUint64());
}
