/**
 * @file
 * Machine-simulator unit tests: cache model timing, global-stall
 * accounting via performance counters, message delivery/epilogue
 * verification, and FPGA physical-design model values (Table 1,
 * Table 7).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "designs/designs.hh"
#include "machine/fpga_model.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "runtime/host.hh"
#include "runtime/simulation.hh"

using namespace manticore;

TEST(CacheModel, HitsAfterFirstMiss)
{
    isa::MachineConfig cfg;
    machine::PerfCounters perf;
    machine::CacheModel cache(cfg);
    unsigned first = cache.access(100, false, perf);
    EXPECT_EQ(first, cfg.cacheMissStall);
    unsigned second = cache.access(101, false, perf);
    EXPECT_EQ(second, cfg.cacheHitStall); // same 64-byte line
    EXPECT_EQ(perf.cacheHits, 1u);
    EXPECT_EQ(perf.cacheMisses, 1u);
}

TEST(CacheModel, DirectMappedConflicts)
{
    isa::MachineConfig cfg;
    machine::PerfCounters perf;
    machine::CacheModel cache(cfg);
    unsigned words_per_line = cfg.cacheLineBytes / 2;
    unsigned num_lines = cfg.cacheBytes / cfg.cacheLineBytes;
    uint64_t stride = static_cast<uint64_t>(words_per_line) * num_lines;
    cache.access(0, false, perf);
    cache.access(stride, false, perf);  // evicts line 0
    cache.access(0, false, perf);       // misses again
    EXPECT_EQ(perf.cacheMisses, 3u);
    EXPECT_EQ(perf.cacheHits, 0u);
}

TEST(Machine, GlobalStallChargedForDramResidentMemory)
{
    // 64 KiB RAM goes to DRAM; every Vcycle does a load and a store.
    netlist::Netlist nl = designs::buildRamMicro(64, 1000);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    compiler::CompileResult result = compiler::compile(nl, opts);
    machine::Machine m(result.program, opts.config);
    runtime::Host host(result.program, m.globalMemory());
    host.attach(engine::wrap(m));
    m.run(32);
    const machine::PerfCounters &perf = m.perf();
    EXPECT_GT(perf.stallCycles, 0u);
    EXPECT_GT(perf.cacheHits + perf.cacheMisses, 0u);
    EXPECT_EQ(perf.totalCycles(),
              perf.activeCycles + perf.stallCycles);
}

TEST(Machine, ScratchResidentMemoryNeverStalls)
{
    netlist::Netlist nl = designs::buildFifoMicro(1, 1000);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    compiler::CompileResult result = compiler::compile(nl, opts);
    machine::Machine m(result.program, opts.config);
    m.run(32);
    EXPECT_EQ(m.perf().cacheHits + m.perf().cacheMisses, 0u);
    EXPECT_EQ(m.perf().stallCycles, 0u);
}

TEST(Machine, MessagesMatchEpilogueLengths)
{
    netlist::Netlist nl = designs::buildCgra(64);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 4;
    compiler::CompileResult result = compiler::compile(nl, opts);
    uint64_t expected_per_vcycle = 0;
    for (const auto &proc : result.program.processes)
        expected_per_vcycle += proc.epilogueLength;
    machine::Machine m(result.program, opts.config);
    runtime::Host host(result.program, m.globalMemory());
    host.attach(engine::wrap(m));
    m.run(10);
    // runVcycle() asserts exact counts internally; cross-check totals.
    EXPECT_EQ(m.perf().messagesDelivered,
              expected_per_vcycle * m.perf().vcycles);
}

TEST(Machine, EffectiveRateAccountsForStalls)
{
    netlist::Netlist nl = designs::buildRamMicro(512, 100000);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    runtime::Simulation sim(nl, opts);
    sim.run(64);
    double ideal =
        sim.compileResult().simulationRateKhz(opts.config.clockKhz);
    EXPECT_LT(sim.effectiveRateKhz(), ideal);
}

TEST(FpgaModel, UramBudgetCapsCores)
{
    machine::FpgaModel model;
    EXPECT_EQ(model.maxCores(), 398u);
}

TEST(FpgaModel, Table1FrequenciesReproduced)
{
    machine::FpgaModel model;
    // Automatic floorplanning (Table 1 top row).
    EXPECT_NEAR(model.fmaxMhz(8, 8, false), 500, 1);
    EXPECT_NEAR(model.fmaxMhz(10, 10, false), 485, 1);
    EXPECT_NEAR(model.fmaxMhz(12, 12, false), 480, 1);
    EXPECT_NEAR(model.fmaxMhz(15, 15, false), 395, 1);
    EXPECT_NEAR(model.fmaxMhz(16, 16, false), 180, 1);
    // Guided floorplanning (Table 1 bottom row).
    EXPECT_NEAR(model.fmaxMhz(12, 12, true), 500, 1);
    EXPECT_NEAR(model.fmaxMhz(15, 15, true), 475, 1);
    EXPECT_NEAR(model.fmaxMhz(16, 16, true), 450, 1);
    // Guided never loses to automatic.
    for (unsigned g = 2; g <= 19; ++g)
        EXPECT_GE(model.fmaxMhz(g, g, true), model.fmaxMhz(g, g, false));
    // Too big for the URAM budget.
    EXPECT_EQ(model.fmaxMhz(20, 20, true), 0.0);
}

TEST(FpgaModel, Table7UtilizationFractions)
{
    machine::FpgaModel model;
    auto util = model.coreUtilization();
    // Paper: every core resource under 0.21% of the device, with URAM
    // dominant (Table 7 row: 0.05 0.02 0.05 0.19 0.21 0.01).
    double uram_frac = 0.0;
    for (const auto &[name, frac] : util) {
        EXPECT_LT(frac, 0.0025) << name;
        if (name == "URAM")
            uram_frac = frac;
    }
    EXPECT_NEAR(uram_frac, 0.0025, 0.0006);
    for (const auto &[name, frac] : util)
        EXPECT_LE(frac, uram_frac + 1e-9)
            << "URAM should be the binding resource, not " << name;
}

TEST(Machine, StateMatchesInterpreterOnScratchpads)
{
    netlist::Netlist nl = designs::buildVta(200);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 2;
    compiler::CompileResult result = compiler::compile(nl, opts);

    isa::Interpreter interp(result.program, opts.config);
    machine::Machine mach(result.program, opts.config);
    for (int i = 0; i < 80; ++i) {
        interp.stepVcycle();
        mach.runVcycle();
    }
    for (uint32_t pid = 0; pid < result.program.processes.size();
         ++pid) {
        for (uint32_t a = 0; a < 256; ++a)
            ASSERT_EQ(interp.scratchValue(pid, a),
                      mach.scratchValue(pid, a))
                << "scratch divergence pid " << pid << " addr " << a;
    }
}

TEST(Machine, HeavyNocTrafficHasNoCollisions)
{
    // 64 Monte-Carlo paths on a full 15x15 grid: hundreds of SENDs
    // per Vcycle converging on the checksum owner.  The machine
    // panics on any link collision, late arrival, or epilogue-count
    // mismatch, so surviving the run proves the compiler's routing.
    netlist::Netlist nl = designs::buildMcSized(1u << 20, 64);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 15;
    compiler::CompileResult result = compiler::compile(nl, opts);

    uint64_t sends = result.schedule.totalSends;
    EXPECT_GT(sends, 100u) << "expected heavy NoC traffic";

    machine::Machine m(result.program, opts.config);
    isa::Interpreter interp(result.program, opts.config);
    for (int i = 0; i < 12; ++i) {
        m.runVcycle();
        interp.stepVcycle();
    }
    EXPECT_EQ(m.perf().messagesDelivered, sends * 12);
    // Spot-check convergence of state across engines.
    for (size_t r = 0; r < result.regChunkHome.size(); ++r)
        for (const auto &home : result.regChunkHome[r])
            ASSERT_EQ(m.regValue(home.process, home.reg),
                      interp.regValue(home.process, home.reg));
}
