/**
 * @file
 * AOT-evaluator tests: randomized differential against the serial
 * compiled evaluator (identical stimulus, full architectural state
 * compared every cycle), the object-cache protocol (second
 * construction loads the cached object without invoking the
 * compiler; a corrupted entry is detected, unlinked and rebuilt),
 * the graceful fallback to the interpreted tape when no toolchain
 * works, and the strict factory/registry path that refuses instead.
 * Labelled "aot" in CMake so both sanitized configs run it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/registry.hh"
#include "netlist/aot.hh"
#include "netlist/builder.hh"
#include "netlist/compiled_evaluator.hh"
#include "random_circuit.hh"

using namespace manticore;
using netlist::AotEvaluator;
using netlist::CompiledEvaluator;
using netlist::EvalOptions;
using netlist::MemId;
using netlist::Netlist;
using netlist::RegId;
using netlist::SimStatus;
using manticore::testing::RandomCircuit;
using manticore::testing::randomValue;

namespace {

bool
hostHasToolchain()
{
    return netlist::aotToolchain().ok;
}

/** Per-test cache directory under gtest's temp dir, so tests never
 *  see each other's (or a previous run's) objects — the path is
 *  stable across runs, so any leftover contents are wiped here. */
std::string
freshCacheDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "manticore-aot-test-" + tag;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

EvalOptions
aotOptions(const std::string &cache_dir)
{
    EvalOptions options;
    options.aotCacheDir = cache_dir;
    return options;
}

/** Small closed design with a register, a memory write and a wide
 *  accumulator — enough tape variety to make a cache entry worth
 *  checking. */
Netlist
cachedDesign()
{
    netlist::CircuitBuilder b("aot_cache");
    auto cyc = b.reg("cyc", 16);
    b.next(cyc, cyc.read() + b.lit(16, 1));
    auto acc = b.reg("acc", 100, 1);
    b.next(acc, acc.read() + cyc.read().zext(100));
    auto mem = b.memory("m", 16, 8);
    mem.write(cyc.read().slice(0, 3).zext(16), cyc.read(), b.lit(1, 1));
    return b.build();
}

/** Step `a` (the trusted interpreted tape) and `b` (the subject) in
 *  lockstep, asserting identical architectural state every cycle. */
void
runLockstep(const Netlist &nl, CompiledEvaluator &a, CompiledEvaluator &b,
            const std::vector<unsigned> &input_widths, uint64_t seed,
            unsigned cycles)
{
    Rng drive(seed ^ 0xa07a07a07ull);
    for (unsigned c = 0; c < cycles; ++c) {
        for (size_t i = 0; i < input_widths.size(); ++i) {
            BitVector v = randomValue(drive, input_widths[i]);
            std::string name = "in" + std::to_string(i);
            a.setInput(name, v);
            b.setInput(name, v);
        }
        SimStatus sa = a.step();
        SimStatus sb = b.step();
        ASSERT_EQ(sa, sb) << "status diverged at cycle " << c;
        ASSERT_EQ(a.failureMessage(), b.failureMessage());
        for (size_t r = 0; r < nl.numRegisters(); ++r)
            ASSERT_EQ(a.regValue(static_cast<RegId>(r)),
                      b.regValue(static_cast<RegId>(r)))
                << "reg " << nl.reg(static_cast<RegId>(r)).name
                << " diverged at cycle " << c;
        for (size_t m = 0; m < nl.numMemories(); ++m)
            for (unsigned addr = 0;
                 addr < nl.memory(static_cast<MemId>(m)).depth; ++addr)
                ASSERT_EQ(a.memValue(static_cast<MemId>(m), addr),
                          b.memValue(static_cast<MemId>(m), addr))
                    << "mem " << m << "[" << addr
                    << "] diverged at cycle " << c;
        if (sa != SimStatus::Ok)
            break;
    }
    ASSERT_EQ(a.displayLog(), b.displayLog());
}

} // namespace

TEST(AotEvaluator, RandomizedDifferentialAgainstTheInterpretedTape)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    EvalOptions options = aotOptions(freshCacheDir("diff"));
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        RandomCircuit gen(seed * 0x9e3779b9ull);
        Netlist nl = gen.build();
        SCOPED_TRACE("seed " + std::to_string(seed));
        CompiledEvaluator tape(nl);
        AotEvaluator aot(nl, options);
        ASSERT_TRUE(aot.usingAot()) << "fell back to the interpreter";
        runLockstep(nl, tape, aot, gen.inputWidths(), seed, 48);
    }
}

TEST(AotEvaluator, SecondConstructionHitsTheCache)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    EvalOptions options = aotOptions(freshCacheDir("hit"));
    Netlist nl = cachedDesign();

    AotEvaluator cold(nl, options);
    ASSERT_TRUE(cold.usingAot());
    EXPECT_FALSE(cold.cacheHit());
    EXPECT_GE(cold.compilerInvocations(), 1u);

    AotEvaluator warm(nl, options);
    ASSERT_TRUE(warm.usingAot());
    EXPECT_TRUE(warm.cacheHit());
    EXPECT_EQ(warm.compilerInvocations(), 0u);
    EXPECT_EQ(warm.cacheKey(), cold.cacheKey());
    EXPECT_EQ(warm.objectPath(), cold.objectPath());

    // The cached object still computes the right thing.
    CompiledEvaluator tape(nl);
    runLockstep(nl, tape, warm, {}, 7, 32);
}

TEST(AotEvaluator, CorruptedCacheEntryIsRebuilt)
{
    if (!hostHasToolchain())
        GTEST_SKIP() << netlist::aotToolchain().message;
    EvalOptions options = aotOptions(freshCacheDir("corrupt"));
    Netlist nl = cachedDesign();

    std::string object_path;
    {
        AotEvaluator cold(nl, options);
        ASSERT_TRUE(cold.usingAot());
        object_path = cold.objectPath();
    }
    // Truncate the cached object to garbage: dlopen (or the embedded
    // key check) must reject it and the evaluator must rebuild.
    {
        std::FILE *f = std::fopen(object_path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not an ELF object", f);
        std::fclose(f);
    }
    AotEvaluator rebuilt(nl, options);
    ASSERT_TRUE(rebuilt.usingAot());
    EXPECT_FALSE(rebuilt.cacheHit());
    EXPECT_GE(rebuilt.compilerInvocations(), 1u);

    CompiledEvaluator tape(nl);
    runLockstep(nl, tape, rebuilt, {}, 11, 32);
}

TEST(AotEvaluator, MissingCompilerFallsBackToTheInterpretedTape)
{
    // Direct construction with an unusable compiler must degrade
    // gracefully: a warning, no compiler run, identical results.
    EvalOptions options = aotOptions(freshCacheDir("fallback"));
    options.aotCompiler = "/nonexistent/manticore-bogus-c++";
    Netlist nl = cachedDesign();

    AotEvaluator fallback(nl, options);
    EXPECT_FALSE(fallback.usingAot());
    EXPECT_EQ(fallback.compilerInvocations(), 0u);
    EXPECT_FALSE(fallback.cacheHit());

    CompiledEvaluator tape(nl);
    runLockstep(nl, tape, fallback, {}, 13, 32);
}

TEST(AotEvaluator, FactoryIsStrictAboutAMissingToolchain)
{
    // makeEvaluator / the registry are the "asked for AOT by name"
    // path: no silent fallback, a fatal naming the probed toolchain.
    Netlist nl = cachedDesign();
    EvalOptions options = aotOptions(freshCacheDir("strict"));
    options.aotCompiler = "/nonexistent/manticore-bogus-c++";
    EXPECT_EXIT(
        netlist::makeEvaluator(nl, netlist::EvalMode::Aot, options),
        ::testing::ExitedWithCode(1),
        "netlist.aot needs a working host C\\+\\+ compiler");
}

TEST(AotEvaluator, EmittedSourceIsSelfDescribing)
{
    Netlist nl = cachedDesign();
    EvalOptions options = aotOptions(freshCacheDir("emit"));
    options.aotCompiler = "/nonexistent/manticore-bogus-c++";
    AotEvaluator eval(nl, options); // fallback: no compile needed
    std::string src = eval.emitSource();
    EXPECT_NE(src.find("manticore_aot_cycle"), std::string::npos);
    EXPECT_NE(src.find("support/limbops.hh"), std::string::npos);
    // One statement per tape instruction, chunked: at least one chunk
    // function must exist.
    EXPECT_NE(src.find("cycle_chunk0"), std::string::npos);
}

TEST(AotEngine, RegistryReportsAvailabilityAndStats)
{
    const engine::EngineInfo *info = engine::find("netlist.aot");
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->netlistLevel);
    EXPECT_EQ(info->available, hostHasToolchain());
    EXPECT_FALSE(info->availabilityNote.empty());

    if (!hostHasToolchain())
        GTEST_SKIP() << info->availabilityNote;
    engine::CreateOptions copts;
    copts.eval.aotCacheDir = freshCacheDir("engine");
    auto eng = engine::create("netlist.aot", cachedDesign(), copts);
    EXPECT_STREQ(eng->name(), "netlist.aot");
    EXPECT_TRUE(eng->has(engine::cap::kAotCompiled));
    eng->step(16);
    bool saw_active = false;
    for (const engine::Stat &s : eng->stats())
        if (s.name == "aot_active") {
            saw_active = true;
            EXPECT_EQ(s.value, 1u);
        }
    EXPECT_TRUE(saw_active);
}
