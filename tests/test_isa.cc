/**
 * @file
 * ISA-level unit tests: instruction semantics on the functional
 * interpreter (carry chains, predication, CFU truth tables, sends,
 * exceptions), binary encode/decode round trips, and program
 * validation.
 */

#include <gtest/gtest.h>

#include "isa/encode.hh"
#include "isa/interpreter.hh"
#include "isa/isa.hh"
#include "support/rng.hh"

using namespace manticore;
using isa::Instruction;
using isa::Opcode;
using isa::Process;
using isa::Program;
using isa::Reg;

namespace {

Instruction
make(Opcode op, Reg rd = isa::kNoReg, Reg rs1 = isa::kNoReg,
     Reg rs2 = isa::kNoReg, Reg rs3 = isa::kNoReg, uint16_t imm = 0)
{
    Instruction i;
    i.opcode = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.rs3 = rs3;
    i.imm = imm;
    return i;
}

Program
singleProcess(std::vector<Instruction> body,
              std::unordered_map<Reg, uint16_t> init = {},
              bool privileged = false)
{
    Program p;
    Process proc;
    proc.id = 0;
    proc.privileged = privileged;
    proc.body = std::move(body);
    proc.init = std::move(init);
    p.processes.push_back(std::move(proc));
    return p;
}

} // namespace

TEST(IsaInterp, AddSetsCarryAndAddcConsumesIt)
{
    // r10 = 0xffff + 1 (carry out), r11 = 0 + 0 + carry(r10) = 1.
    Program p = singleProcess(
        {make(Opcode::Add, 10, 1, 2),
         make(Opcode::Addc, 11, 0, 0, 10)},
        {{0, 0}, {1, 0xffff}, {2, 1}});
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    EXPECT_EQ(interp.regValue(0, 10), 0u);
    EXPECT_TRUE(interp.regCarry(0, 10));
    EXPECT_EQ(interp.regValue(0, 11), 1u);
}

TEST(IsaInterp, SubBorrowChain)
{
    // 0x0000_0000 - 1 over two chunks = 0xffff_ffff.
    Program p = singleProcess(
        {make(Opcode::Sub, 10, 0, 1),
         make(Opcode::Subb, 11, 0, 0, 10)},
        {{0, 0}, {1, 1}});
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    EXPECT_EQ(interp.regValue(0, 10), 0xffffu);
    EXPECT_EQ(interp.regValue(0, 11), 0xffffu);
}

TEST(IsaInterp, MulAndMulh)
{
    Program p = singleProcess(
        {make(Opcode::Mul, 10, 1, 2), make(Opcode::Mulh, 11, 1, 2)},
        {{1, 0x1234}, {2, 0x5678}});
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    uint32_t full = 0x1234u * 0x5678u;
    EXPECT_EQ(interp.regValue(0, 10), full & 0xffff);
    EXPECT_EQ(interp.regValue(0, 11), full >> 16);
}

TEST(IsaInterp, SliceAndShifts)
{
    Program p = singleProcess(
        {make(Opcode::Slice, 10, 1, isa::kNoReg, isa::kNoReg,
              Instruction::packSlice(4, 8)),
         make(Opcode::Sll, 11, 1, 2), make(Opcode::Srl, 12, 1, 3)},
        {{1, 0xabcd}, {2, 4}, {3, 8}});
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    EXPECT_EQ(interp.regValue(0, 10), 0xbcu);
    EXPECT_EQ(interp.regValue(0, 11), 0xbcd0u);
    EXPECT_EQ(interp.regValue(0, 12), 0xabu);
}

TEST(IsaInterp, PredicationGatesStores)
{
    Program p = singleProcess(
        {make(Opcode::Pred, isa::kNoReg, 0),      // pred = 0
         make(Opcode::Lst, isa::kNoReg, 2, 5, isa::kNoReg, 0),
         make(Opcode::Pred, isa::kNoReg, 1),      // pred = 1
         make(Opcode::Lst, isa::kNoReg, 2, 5, isa::kNoReg, 1),
         make(Opcode::Lld, 10, 2, isa::kNoReg, isa::kNoReg, 0),
         make(Opcode::Lld, 11, 2, isa::kNoReg, isa::kNoReg, 1)},
        {{0, 0}, {1, 1}, {2, 100}, {5, 0x7777}});
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    EXPECT_EQ(interp.regValue(0, 10), 0u);       // gated store skipped
    EXPECT_EQ(interp.regValue(0, 11), 0x7777u);  // enabled store landed
    EXPECT_EQ(interp.scratchValue(0, 101), 0x7777u);
}

TEST(IsaInterp, CustomFunctionAppliesPerLaneLut)
{
    // f = (a & b) ^ c, built lane-uniformly.
    isa::CustomFunction f;
    for (unsigned lane = 0; lane < 16; ++lane) {
        uint16_t t = 0;
        for (unsigned idx = 0; idx < 16; ++idx) {
            bool a = idx & 1, b = idx & 2, c = idx & 4;
            if ((a && b) != c)
                t |= static_cast<uint16_t>(1u << idx);
        }
        f.lut[lane] = t;
    }
    EXPECT_EQ(f.apply(0xff00, 0xf0f0, 0x0f0f, 0),
              ((0xff00 & 0xf0f0) ^ 0x0f0f));

    Program p = singleProcess({make(Opcode::Cust, 10, 1, 2, 3, 0)},
                              {{1, 0x1234}, {2, 0xff00}, {3, 0x00ff}});
    p.processes[0].body[0].rs4 = 1;
    p.processes[0].functions.push_back(f);
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    EXPECT_EQ(interp.regValue(0, 10), (0x1234 & 0xff00) ^ 0x00ff);
}

TEST(IsaInterp, SendDeliversAtVcycleBoundary)
{
    Program p;
    Process p0;
    p0.id = 0;
    p0.init = {{1, 0xaaaa}};
    Instruction send = make(Opcode::Send, 7, 1);
    send.target = 1;
    p0.body = {send};
    Process p1;
    p1.id = 1;
    p1.init = {{7, 0x1111}};
    // p1 copies its r7 to r8 — sees the OLD value this Vcycle.
    p1.body = {make(Opcode::Mov, 8, 7)};
    p1.epilogueLength = 1;
    p.processes = {p0, p1};

    isa::MachineConfig cfg;
    cfg.gridX = 2;
    cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    interp.stepVcycle();
    EXPECT_EQ(interp.regValue(1, 8), 0x1111u); // pre-update value
    EXPECT_EQ(interp.regValue(1, 7), 0xaaaau); // updated at boundary
}

TEST(IsaInterp, ExpectRaisesThroughHostCallback)
{
    Program p = singleProcess({make(Opcode::Expect, isa::kNoReg, 1, 0,
                                    isa::kNoReg, 3)},
                              {{0, 0}, {1, 5}}, true);
    p.exceptions.add({isa::ExceptionKind::Finish, "f", {}, {}});
    p.exceptions.add({isa::ExceptionKind::Finish, "f", {}, {}});
    p.exceptions.add({isa::ExceptionKind::Finish, "f", {}, {}});
    p.exceptions.add({isa::ExceptionKind::Finish, "$finish", {}, {}});
    isa::MachineConfig cfg;
    cfg.gridX = cfg.gridY = 1;
    isa::Interpreter interp(p, cfg);
    uint16_t seen = 0xffff;
    interp.onException = [&](uint32_t, uint16_t eid) {
        seen = eid;
        return isa::HostAction::Finish;
    };
    auto status = interp.stepVcycle();
    EXPECT_EQ(seen, 3u);
    EXPECT_EQ(status, isa::RunStatus::Finished);
}

TEST(IsaEncode, InstructionRoundTrip)
{
    Rng rng(11);
    for (int trial = 0; trial < 500; ++trial) {
        Instruction in;
        in.opcode = static_cast<Opcode>(
            rng.below(static_cast<uint64_t>(Opcode::NumOpcodes)));
        in.rd = rng.chance(0.1) ? isa::kNoReg
                                : static_cast<Reg>(rng.below(2048));
        in.rs1 = static_cast<Reg>(rng.below(2048));
        in.rs2 = static_cast<Reg>(rng.below(2048));
        in.rs3 = static_cast<Reg>(rng.below(2048));
        in.rs4 = static_cast<Reg>(rng.below(2048));
        in.imm = static_cast<uint16_t>(rng.next());
        in.target = static_cast<uint32_t>(rng.below(1 << 24));
        uint8_t rec[16];
        isa::encodeInstruction(in, rec);
        Instruction out = isa::decodeInstruction(rec);
        EXPECT_EQ(out.opcode, in.opcode);
        EXPECT_EQ(out.rd, in.rd);
        EXPECT_EQ(out.rs1, in.rs1);
        EXPECT_EQ(out.rs2, in.rs2);
        EXPECT_EQ(out.rs3, in.rs3);
        EXPECT_EQ(out.rs4, in.rs4);
        EXPECT_EQ(out.imm, in.imm);
        EXPECT_EQ(out.target, in.target);
    }
}

TEST(IsaEncode, ProgramRoundTripPreservesEverything)
{
    Program p;
    Process proc;
    proc.id = 0;
    proc.privileged = true;
    proc.epilogueLength = 3;
    proc.body = {make(Opcode::Add, 5, 1, 2),
                 make(Opcode::Expect, isa::kNoReg, 0, 0, isa::kNoReg, 0)};
    proc.init = {{1, 100}, {2, 200}};
    isa::CustomFunction f;
    f.lut[3] = 0xbeef;
    proc.functions.push_back(f);
    proc.scratchInit = {1, 2, 3, 4};
    p.processes.push_back(proc);
    p.placement = {{0, 0}};
    p.vcpl = 77;
    p.globalWordsReserved = 9;
    p.globalInit = {{5, 0xaa}, {100000, 0xbb}};
    isa::ExceptionInfo e;
    e.kind = isa::ExceptionKind::Display;
    e.format = "x=%d";
    e.argChunkAddrs = {{1, 2}};
    e.argWidths = {20};
    p.exceptions.add(e);

    Program q = isa::decodeProgram(isa::encodeProgram(p));
    ASSERT_EQ(q.processes.size(), 1u);
    EXPECT_EQ(q.processes[0].privileged, true);
    EXPECT_EQ(q.processes[0].epilogueLength, 3u);
    EXPECT_EQ(q.processes[0].body.size(), 2u);
    EXPECT_EQ(q.processes[0].init.at(2), 200);
    EXPECT_EQ(q.processes[0].functions[0].lut[3], 0xbeef);
    EXPECT_EQ(q.processes[0].scratchInit,
              (std::vector<uint16_t>{1, 2, 3, 4}));
    EXPECT_EQ(q.vcpl, 77u);
    EXPECT_EQ(q.globalInit.size(), 2u);
    EXPECT_EQ(q.globalInit[1].first, 100000u);
    EXPECT_EQ(q.exceptions.info(0).format, "x=%d");
    EXPECT_EQ(q.exceptions.info(0).argChunkAddrs[0],
              (std::vector<uint64_t>{1, 2}));
    EXPECT_EQ(q.exceptions.info(0).argWidths[0], 20u);
    EXPECT_EQ(q.placement[0], (std::pair<unsigned, unsigned>{0, 0}));
}

TEST(IsaValidate, RejectsPrivilegedInstructionInNormalProcess)
{
    Program p = singleProcess({make(Opcode::Gld, 1, 0, 0)},
                              {{0, 0}}, /*privileged=*/false);
    isa::MachineConfig cfg;
    EXPECT_EXIT(isa::validate(p, cfg), ::testing::ExitedWithCode(1),
                "privileged instruction");
}

TEST(IsaValidate, RejectsBadSliceRange)
{
    Program p = singleProcess(
        {make(Opcode::Slice, 1, 0, isa::kNoReg, isa::kNoReg,
              Instruction::packSlice(12, 8))},
        {{0, 0}});
    isa::MachineConfig cfg;
    EXPECT_EXIT(isa::validate(p, cfg), ::testing::ExitedWithCode(1),
                "bad SLICE");
}

TEST(IsaPrint, ToStringShowsOperands)
{
    Instruction i = make(Opcode::Add, 3, 1, 2);
    EXPECT_EQ(i.toString(), "ADD $r3, $r1, $r2");
    Instruction s = make(Opcode::Send, 9, 4);
    s.target = 7;
    EXPECT_EQ(s.toString(), "SEND p7.$r9, $r4");
}
