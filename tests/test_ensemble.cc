/**
 * @file
 * Ensemble-execution tests: an N-lane ensemble engine must be
 * indistinguishable, lane by lane, from N independent scalar runs of
 * the same netlist under the same per-lane stimulus — including
 * divergent per-lane finish/assert cycles, display transcripts and
 * failure messages.  Also covers the satellite guarantees: lane-0
 * API compatibility at lanes=1, broadcast vs lane-indexed stimulus,
 * batched step(n) exactness on ensembles, the blocking rendezvous
 * wait policy, aggregated stats / RunResult::lanes, and the
 * registry's rejection of lanes on non-ensemble engines.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"
#include "support/rng.hh"
#include "runtime/simulation.hh"
#include "runtime/waveform.hh"
#include "tests/random_circuit.hh"

using namespace manticore;

namespace {

const std::vector<std::string> kEnsembleEngines = {"netlist.compiled",
                                                   "netlist.parallel"};

/** Open design: free threshold input x, cycle counter, accumulator
 *  with a $display burst, $finish when the counter reaches x. */
netlist::Netlist
finishAtInputDesign()
{
    netlist::CircuitBuilder b("ens_finish");
    auto x = b.input("x", 16);
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    auto acc = b.reg("acc", 32);
    b.next(acc, acc.read() + c.read().zext(32));
    b.display(c.read() == b.lit(16, 2), "acc=%d", {acc.read()});
    b.finish(c.read() == x);
    return b.build();
}

/** Open design: the assertion trips (enable=1, cond=0) exactly when
 *  the counter reaches the free input x. */
netlist::Netlist
assertAtInputDesign()
{
    netlist::CircuitBuilder b("ens_assert");
    auto x = b.input("x", 16);
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    b.assertAlways(c.read() == x, b.lit(1, 0), "lane tripwire");
    return b.build();
}

engine::CreateOptions
ensembleOptions(unsigned lanes)
{
    engine::CreateOptions options;
    options.lanes = lanes;
    options.eval.numThreads = 3;
    return options;
}

/** Deterministic per-(seed, lane, cycle) stimulus stream, identical
 *  for the ensemble lane and its scalar golden. */
Rng
laneRng(uint64_t seed, unsigned lane, uint64_t cycle)
{
    return Rng(seed * 0x9e3779b97f4a7c15ull + lane * 1000003ull +
               cycle * 7919ull);
}

struct LaneGoldens
{
    std::vector<std::unique_ptr<engine::Engine>> owned;
    std::vector<engine::Engine *> ptrs;
};

LaneGoldens
makeGoldens(const netlist::Netlist &nl, unsigned lanes,
            const std::string &name = "netlist.reference")
{
    LaneGoldens g;
    for (unsigned l = 0; l < lanes; ++l) {
        g.owned.push_back(engine::create(name, nl));
        g.ptrs.push_back(g.owned.back().get());
    }
    return g;
}

/** The tentpole differential: every lane of an ensemble run of a
 *  random netlist must match an independent scalar reference run
 *  under the same per-lane random stimulus — probes, status, cycle
 *  counts, failure messages and display transcripts. */
void
runRandomDifferential(const std::string &subject_name, unsigned lanes,
                      uint64_t seed, uint64_t horizon,
                      netlist::WaitPolicy wait_policy =
                          netlist::WaitPolicy::Spin)
{
    manticore::testing::RandomCircuit rc(seed);
    netlist::Netlist nl = rc.build();

    engine::CreateOptions sopts = ensembleOptions(lanes);
    sopts.eval.waitPolicy = wait_policy;
    auto subject = engine::create(subject_name, nl, sopts);
    EXPECT_EQ(subject->lanes(), lanes);
    EXPECT_EQ(subject->has(engine::cap::kEnsemble), lanes > 1);

    LaneGoldens goldens = makeGoldens(nl, lanes);

    const std::vector<unsigned> &widths = rc.inputWidths();
    std::unordered_map<engine::Engine *,
                       std::vector<engine::InputHandle>>
        handles;
    auto bindAll = [&](engine::Engine &e) {
        std::vector<engine::InputHandle> hs;
        for (size_t i = 0; i < widths.size(); ++i)
            hs.push_back(e.bindInput("in" + std::to_string(i)));
        handles[&e] = std::move(hs);
    };
    bindAll(*subject);
    for (engine::Engine *g : goldens.ptrs)
        bindAll(*g);

    engine::EnsembleCrossCheck cc(goldens.ptrs, *subject);
    cc.setStimulus([&](engine::Engine &e, unsigned lane,
                       uint64_t cycle) {
        Rng rng = laneRng(seed, lane, cycle);
        const auto &hs = handles.at(&e);
        for (size_t i = 0; i < hs.size(); ++i)
            engine::driveLane(e, hs[i], lane,
                              manticore::testing::randomValue(rng, widths[i]));
    });
    cc.run(horizon);
    EXPECT_FALSE(cc.diverged())
        << subject_name << " lanes=" << lanes << " seed=" << seed
        << ": " << cc.divergence();

    for (unsigned l = 0; l < lanes; ++l) {
        EXPECT_EQ(subject->laneDisplayLog(l),
                  goldens.ptrs[l]->displayLog())
            << subject_name << " lanes=" << lanes << " seed=" << seed
            << " lane=" << l << ": display transcripts differ";
        EXPECT_EQ(subject->laneCycle(l), goldens.ptrs[l]->cycle());
        EXPECT_EQ(subject->laneStatus(l), goldens.ptrs[l]->status());
    }
}

} // namespace

TEST(Ensemble, RandomDifferentialEveryLaneCount)
{
    for (const std::string &name : kEnsembleEngines)
        for (unsigned lanes : {1u, 2u, 7u, 16u})
            for (uint64_t seed : {11ull, 23ull, 37ull})
                runRandomDifferential(name, lanes, seed, 150);
}

TEST(Ensemble, RandomDifferentialBlockingWaitPolicy)
{
    // The condvar rendezvous must be exactly as cycle-exact (and, in
    // the sanitized configs, as race-free) as the spinning one.
    for (unsigned lanes : {1u, 4u})
        for (uint64_t seed : {11ull, 23ull})
            runRandomDifferential("netlist.parallel", lanes, seed, 150,
                                  netlist::WaitPolicy::Block);
}

TEST(Ensemble, DivergentFinishCyclesFreezeOnlyTheirLane)
{
    netlist::Netlist nl = finishAtInputDesign();
    for (const std::string &name : kEnsembleEngines) {
        const unsigned lanes = 4;
        auto subject = engine::create(name, nl, ensembleOptions(lanes));
        engine::InputHandle x = subject->bindInput("x");
        for (unsigned l = 0; l < lanes; ++l)
            subject->setInputLane(x, l, BitVector(16, 5 * (l + 1)));

        engine::RunResult res = subject->step(200);
        EXPECT_EQ(res.lanes, lanes);
        EXPECT_EQ(res.status, engine::Status::Finished);
        // $finish fires when c == x, which commits cycle x and stops
        // the lane at x + 1 completed cycles; the last lane bounds
        // the ensemble cycle count.
        for (unsigned l = 0; l < lanes; ++l) {
            EXPECT_EQ(subject->laneStatus(l), engine::Status::Finished);
            EXPECT_EQ(subject->laneCycle(l), 5 * (l + 1) + 1u);
        }
        EXPECT_EQ(subject->cycle(), 5 * lanes + 1u);
        EXPECT_EQ(res.cycles, 5 * lanes + 1u);
        // Lane 0 view == the scalar API.
        EXPECT_EQ(subject->status(), subject->laneStatus(0));
    }
}

TEST(Ensemble, FinishOnlyDesignsTakeTheFusedPathCorrectly)
{
    // No asserts and no displays: the engines take the fused
    // finishes-only cycle path — divergent per-lane finishes must
    // still freeze exactly their lane, exactly like the general
    // path, and match scalar golden runs.
    netlist::CircuitBuilder b("ens_finish_only");
    auto x = b.input("x", 16);
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    b.finish(c.read() == x);
    netlist::Netlist nl = b.build();

    for (const std::string &name : kEnsembleEngines) {
        const unsigned lanes = 4;
        auto subject = engine::create(name, nl, ensembleOptions(lanes));
        auto golden = engine::create("netlist.reference", nl);
        engine::InputHandle sx = subject->bindInput("x");
        engine::InputHandle gx = golden->bindInput("x");
        for (unsigned l = 0; l < lanes; ++l)
            subject->setInputLane(sx, l, BitVector(16, 3 + 4 * l));
        golden->setInput(gx, BitVector(16, 3 + 4 * 2));

        engine::RunResult res = subject->step(100);
        golden->step(100);
        EXPECT_EQ(res.status, engine::Status::Finished);
        for (unsigned l = 0; l < lanes; ++l) {
            EXPECT_EQ(subject->laneStatus(l), engine::Status::Finished);
            EXPECT_EQ(subject->laneCycle(l), 3 + 4 * l + 1u) << name;
        }
        EXPECT_EQ(subject->laneCycle(2), golden->cycle());
        engine::ProbeHandle pc = subject->probe("c");
        engine::ProbeHandle gc = golden->probe("c");
        EXPECT_EQ(subject->readLane(pc, 2), golden->read(gc));
    }
}

TEST(Ensemble, DivergentAssertsFreezeOnlyTheirLane)
{
    netlist::Netlist nl = assertAtInputDesign();
    for (const std::string &name : kEnsembleEngines) {
        const unsigned lanes = 3;
        auto subject = engine::create(name, nl, ensembleOptions(lanes));
        // A golden scalar run of lane 1's waveform pins the failure
        // message text (including the cycle number).
        auto golden = engine::create("netlist.reference", nl);
        engine::InputHandle x = subject->bindInput("x");
        engine::InputHandle gx = golden->bindInput("x");
        // Lane l trips its assertion at cycle 4 + 2l; lane 2 never
        // trips within the horizon.
        subject->setInputLane(x, 0, BitVector(16, 4));
        subject->setInputLane(x, 1, BitVector(16, 6));
        subject->setInputLane(x, 2, BitVector(16, 500));
        golden->setInput(gx, BitVector(16, 6));

        engine::RunResult res = subject->step(50);
        golden->step(50);

        EXPECT_EQ(subject->laneStatus(0), engine::Status::Failed);
        EXPECT_EQ(subject->laneCycle(0), 4u);
        EXPECT_EQ(subject->laneStatus(1), engine::Status::Failed);
        EXPECT_EQ(subject->laneCycle(1), 6u);
        EXPECT_EQ(subject->laneFailureMessage(1),
                  golden->failureMessage());
        // Lane 2 kept running the full batch despite both failures.
        EXPECT_EQ(subject->laneStatus(2), engine::Status::Running);
        EXPECT_EQ(subject->laneCycle(2), 50u);
        EXPECT_EQ(res.status, engine::Status::Failed); // lane-0 view
    }
}

TEST(Ensemble, BatchedStepMatchesStep1Loop)
{
    netlist::Netlist nl = finishAtInputDesign();
    for (const std::string &name : kEnsembleEngines) {
        const unsigned lanes = 5;
        auto stepped = engine::create(name, nl, ensembleOptions(lanes));
        auto batched = engine::create(name, nl, ensembleOptions(lanes));
        for (auto *e : {stepped.get(), batched.get()}) {
            engine::InputHandle x = e->bindInput("x");
            for (unsigned l = 0; l < lanes; ++l)
                e->setInputLane(x, l, BitVector(16, 7 + 3 * l));
        }
        for (int i = 0; i < 100; ++i)
            stepped->step(1);
        batched->step(100);
        for (unsigned l = 0; l < lanes; ++l) {
            EXPECT_EQ(stepped->laneCycle(l), batched->laneCycle(l));
            EXPECT_EQ(stepped->laneStatus(l), batched->laneStatus(l));
            EXPECT_EQ(stepped->laneDisplayLog(l),
                      batched->laneDisplayLog(l));
            for (size_t p = 0; p < stepped->numProbes(); ++p)
                EXPECT_EQ(stepped->readLane(
                              static_cast<engine::ProbeHandle>(p), l),
                          batched->readLane(
                              static_cast<engine::ProbeHandle>(p), l));
        }
    }
}

TEST(Ensemble, PlainSetInputBroadcastsToEveryLane)
{
    netlist::Netlist nl = finishAtInputDesign();
    auto subject =
        engine::create("netlist.compiled", nl, ensembleOptions(3));
    engine::InputHandle x = subject->bindInput("x");
    subject->setInput(x, BitVector(16, 1000));
    subject->step(10);
    engine::ProbeHandle c = subject->probe("c");
    for (unsigned l = 0; l < 3; ++l)
        EXPECT_EQ(subject->readLane(c, l), BitVector(16, 10));
    // Lane-indexed drive then splits the lanes again.
    subject->setInputLane(x, 1, BitVector(16, 12));
    subject->step(5);
    EXPECT_EQ(subject->laneStatus(1), engine::Status::Finished);
    EXPECT_EQ(subject->laneStatus(0), engine::Status::Running);
}

TEST(Ensemble, StatsAggregateAndRunResultLanes)
{
    netlist::Netlist nl = finishAtInputDesign();
    auto subject =
        engine::create("netlist.parallel", nl, ensembleOptions(3));
    engine::InputHandle x = subject->bindInput("x");
    for (unsigned l = 0; l < 3; ++l)
        subject->setInputLane(x, l, BitVector(16, 10 * (l + 1)));
    engine::RunResult res = subject->step(100);
    EXPECT_EQ(res.lanes, 3u);

    uint64_t lane_total = 0;
    for (unsigned l = 0; l < 3; ++l)
        lane_total += subject->laneCycle(l);
    std::unordered_map<std::string, uint64_t> stats;
    for (const engine::Stat &s : subject->stats())
        stats[s.name] = s.value;
    EXPECT_EQ(stats.at("cycles"), lane_total);
    EXPECT_EQ(stats.at("lanes"), 3u);
    EXPECT_EQ(stats.at("lane1.cycles"), subject->laneCycle(1));

    // Scalar engines keep the original stats shape: "cycles" is the
    // engine cycle count and no lane counters appear.
    auto scalar = engine::create("netlist.parallel", nl);
    scalar->step(5);
    std::unordered_map<std::string, uint64_t> sstats;
    for (const engine::Stat &s : scalar->stats())
        sstats[s.name] = s.value;
    EXPECT_EQ(sstats.at("cycles"), scalar->cycle());
    EXPECT_EQ(sstats.count("lanes"), 0u);
    EXPECT_EQ(scalar->step(1).lanes, 1u);
}

TEST(Ensemble, SimulationEnsembleCrossCheck)
{
    // The runtime facade wires the subject, the per-lane goldens and
    // the harness in one call.  Simulation compiles the design for
    // its machine, so it only takes closed (self-driving) netlists;
    // per-lane stimulus for open designs goes through
    // EnsembleCrossCheck directly (covered above).
    netlist::CircuitBuilder b("ens_closed");
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    auto acc = b.reg("acc", 32);
    b.next(acc, acc.read() + c.read().zext(32));
    b.display(c.read() == b.lit(16, 3), "acc=%d", {acc.read()});
    b.finish(c.read() == b.lit(16, 30));
    netlist::Netlist nl = b.build();

    compiler::CompileOptions copts;
    copts.config.gridX = copts.config.gridY = 2;
    runtime::Simulation sim(nl, copts, netlist::EvalMode::Compiled);
    isa::RunStatus status = sim.runEnsembleCrossChecked(100, 4);
    EXPECT_EQ(status, isa::RunStatus::Finished) << sim.divergence();
    EXPECT_TRUE(sim.divergence().empty()) << sim.divergence();
}

TEST(Ensemble, PerLaneWaveformCapture)
{
    // The recorder's lane index isolates one lane's waveform: drive
    // lane 1 to finish early, sample both lanes every cycle, and the
    // two VCDs must document different histories (this is the hook
    // fuzz_differential uses to dump the diverging lane on failure).
    netlist::Netlist nl = finishAtInputDesign();
    auto eng = engine::create("netlist.compiled", nl,
                              ensembleOptions(2));
    engine::InputHandle x = eng->bindInput("x");
    engine::driveLane(*eng, x, 0, BitVector(16, 50));
    engine::driveLane(*eng, x, 1, BitVector(16, 5));

    runtime::WaveformRecorder lane0(nl), lane1(nl);
    for (uint64_t cycle = 0; cycle < 20; ++cycle) {
        eng->step(1);
        lane0.sample(*eng, 0, cycle);
        lane1.sample(*eng, 1, cycle);
    }
    EXPECT_EQ(eng->laneStatus(0), engine::Status::Running);
    EXPECT_EQ(eng->laneStatus(1), engine::Status::Finished);
    EXPECT_GT(lane0.changesRecorded(), lane1.changesRecorded())
        << "the frozen lane must stop producing value changes";

    std::ostringstream v0, v1;
    lane0.writeVcd(v0);
    lane1.writeVcd(v1);
    EXPECT_NE(v0.str(), v1.str());
    EXPECT_NE(v0.str().find("$enddefinitions"), std::string::npos);
}

TEST(Ensemble, NonEnsembleEnginesRejectLanes)
{
    netlist::Netlist nl = finishAtInputDesign();
    engine::CreateOptions opts;
    opts.lanes = 2;
    // The rejection is caps-driven and its diagnostic lists every
    // engine advertising cap::kEnsemble (isa.tape joined the club, so
    // it must no longer be rejected — and must be named in the list).
    EXPECT_DEATH(engine::create("netlist.reference", nl, opts),
                 "no ensemble mode.*netlist\\.compiled.*"
                 "netlist\\.parallel.*isa\\.tape");
    EXPECT_DEATH(engine::create("isa.reference", nl, opts),
                 "no ensemble mode");
    EXPECT_DEATH(engine::create("machine", nl, opts),
                 "no ensemble mode");
}
