/**
 * @file
 * Checkpoint/restore tests: randomized save/restore round trips on
 * every snapshot-capable registry engine (the capability summary in
 * EngineInfo::caps decides who participates — engines without
 * cap::kSnapshot are covered by the unsupported-call death test, not
 * skipped silently), cross-engine restores inside each family,
 * loudly-failing header mismatches, and the forkLanes differential:
 * an N-lane ensemble seeded from one cycle-K checkpoint must match N
 * fresh scalar runs lane for lane, for N in {2, 7, 16}.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "netlist/builder.hh"
#include "runtime/replay.hh"
#include "support/rng.hh"

using namespace manticore;

namespace {

/** Closed self-driving design exercising everything a netlist
 *  snapshot serializes: registers (one crossing the 64-bit limb
 *  boundary), a written memory, a display and a far-off $finish. */
netlist::Netlist
snapshotDesign(uint64_t finish_at)
{
    netlist::CircuitBuilder b("snap");
    auto cyc = b.reg("cyc", 16);
    b.next(cyc, cyc.read() + b.lit(16, 1));
    auto acc = b.reg("acc", 72);
    b.next(acc, (acc.read() + cyc.read().zext(72)) ^
                    acc.read().shl(1));
    auto mem = b.memory("scratch", 32, 16);
    auto addr = cyc.read().slice(0, 4);
    mem.write(addr, mem.read(addr) + acc.read().trunc(32),
              b.lit(1, 1));
    b.display(cyc.read() == b.lit(16, 5), "acc=%d", {acc.read()});
    b.finish(cyc.read() == b.lit(16, finish_at));
    return b.build();
}

uint64_t
digestOf(engine::Engine &engine, unsigned lane,
         const std::vector<runtime::ProbeSignal> &signals)
{
    return runtime::probeDigest(engine, lane, signals);
}

} // namespace

// ---------------------------------------------------------------------------
// Randomized round trips on every snapshot-capable engine
// ---------------------------------------------------------------------------

TEST(SnapshotRoundTrip, RandomizedOnEverySnapshotCapableEngine)
{
    netlist::Netlist nl = snapshotDesign(4000);
    const auto signals = runtime::probeSignals(nl);
    Rng rng(0xC0FFEE);
    unsigned covered = 0;
    for (const engine::EngineInfo &info : engine::list()) {
        if (!info.available || !(info.caps & engine::cap::kSnapshot))
            continue;
        SCOPED_TRACE(info.name);
        ++covered;
        auto eng = engine::create(info.name, nl);
        ASSERT_TRUE(eng->has(engine::cap::kSnapshot));
        engine::Snapshot snap;
        for (int round = 0; round < 3; ++round) {
            eng->step(1 + rng.below(40));
            eng->save(snap);
            EXPECT_EQ(snap.cycle, eng->cycle());
            const uint64_t c0 = eng->cycle();
            const uint64_t d0 = digestOf(*eng, 0, signals);

            const uint64_t j = 1 + rng.below(40);
            eng->step(j);
            const uint64_t c1 = eng->cycle();
            const uint64_t d1 = digestOf(*eng, 0, signals);
            ASSERT_GT(c1, c0);
            EXPECT_NE(d1, d0); // the design never repeats state here

            // Restore rewinds to the checkpoint...
            eng->restore(snap);
            EXPECT_EQ(eng->cycle(), c0);
            EXPECT_EQ(eng->status(), engine::Status::Running);
            EXPECT_EQ(digestOf(*eng, 0, signals), d0);
            // ...and the resumed run is deterministic.
            eng->step(j);
            EXPECT_EQ(eng->cycle(), c1);
            EXPECT_EQ(digestOf(*eng, 0, signals), d1);
        }
    }
    // netlist.reference/compiled/parallel + isa.reference/isa.tape
    // always run snapshot rounds (netlist.aot joins when the host
    // toolchain probe succeeds).
    EXPECT_GE(covered, 5u);
}

TEST(SnapshotRoundTrip, RepeatedSaveReusesSections)
{
    netlist::Netlist nl = snapshotDesign(4000);
    auto eng = engine::create("netlist.compiled", nl);
    engine::Snapshot snap;
    eng->step(10);
    eng->save(snap);
    ASSERT_EQ(snap.sections.size(), 1u);
    const size_t bytes = snap.sections[0].size();
    const uint8_t *storage = snap.sections[0].data();
    // Same engine, same design: a re-save must reuse the buffer
    // (reset() keeps capacity — the bench_snapshot hot path).
    eng->step(10);
    eng->save(snap);
    EXPECT_EQ(snap.sections[0].size(), bytes);
    EXPECT_EQ(snap.sections[0].data(), storage);
}

// ---------------------------------------------------------------------------
// Cross-engine restores within a family
// ---------------------------------------------------------------------------

TEST(SnapshotCrossEngine, NetlistFamilyIsPortable)
{
    netlist::Netlist nl = snapshotDesign(4000);
    const auto signals = runtime::probeSignals(nl);

    auto ref = engine::create("netlist.reference", nl);
    ref->step(33);
    engine::Snapshot snap;
    ref->save(snap);
    EXPECT_EQ(snap.family, "netlist");
    const uint64_t d0 = digestOf(*ref, 0, signals);
    ref->step(20);
    const uint64_t d1 = digestOf(*ref, 0, signals);

    for (const engine::EngineInfo &info : engine::list()) {
        if (!info.netlistLevel || !info.available ||
            !(info.caps & engine::cap::kSnapshot))
            continue;
        SCOPED_TRACE(info.name);
        auto eng = engine::create(info.name, nl);
        eng->restore(snap);
        EXPECT_EQ(eng->cycle(), 33u);
        EXPECT_EQ(digestOf(*eng, 0, signals), d0);
        eng->step(20);
        EXPECT_EQ(eng->cycle(), 53u);
        EXPECT_EQ(digestOf(*eng, 0, signals), d1);
    }
}

TEST(SnapshotCrossEngine, IsaFamilyIsPortableBothDirections)
{
    netlist::Netlist nl = snapshotDesign(4000);
    const auto signals = runtime::probeSignals(nl);
    const char *pair[2] = {"isa.reference", "isa.tape"};
    for (int dir = 0; dir < 2; ++dir) {
        SCOPED_TRACE(std::string(pair[dir]) + " -> " + pair[1 - dir]);
        auto from = engine::create(pair[dir], nl);
        auto to = engine::create(pair[1 - dir], nl);
        from->step(27);
        engine::Snapshot snap;
        from->save(snap);
        EXPECT_EQ(snap.family, "isa");
        to->restore(snap);
        EXPECT_EQ(to->cycle(), 27u);
        EXPECT_EQ(digestOf(*to, 0, signals),
                  digestOf(*from, 0, signals));
        from->step(15);
        to->step(15);
        EXPECT_EQ(digestOf(*to, 0, signals),
                  digestOf(*from, 0, signals));
    }
}

// ---------------------------------------------------------------------------
// Mismatches fail loudly (MANTICORE_FATAL exits 1)
// ---------------------------------------------------------------------------

TEST(SnapshotDeathTest, EngineWithoutSnapshotSupportFatals)
{
    netlist::Netlist nl = snapshotDesign(4000);
    const engine::EngineInfo *machine = engine::find("machine");
    ASSERT_NE(machine, nullptr);
    EXPECT_EQ(machine->caps & engine::cap::kSnapshot, 0u);
    auto eng = engine::create("machine", nl);
    engine::Snapshot snap;
    EXPECT_EXIT(eng->save(snap), ::testing::ExitedWithCode(1),
                "kSnapshot");
}

TEST(SnapshotDeathTest, FamilyMismatchFatals)
{
    netlist::Netlist nl = snapshotDesign(4000);
    auto netlist_eng = engine::create("netlist.reference", nl);
    auto isa_eng = engine::create("isa.reference", nl);
    netlist_eng->step(5);
    engine::Snapshot snap;
    netlist_eng->save(snap);
    EXPECT_EXIT(isa_eng->restore(snap), ::testing::ExitedWithCode(1),
                "snapshot family \"netlist\"");
}

TEST(SnapshotDeathTest, DesignDriftFatals)
{
    netlist::Netlist a = snapshotDesign(4000);
    netlist::Netlist b = snapshotDesign(4001); // structurally distinct
    ASSERT_NE(engine::designHash(a), engine::designHash(b));
    auto on_a = engine::create("netlist.reference", a);
    auto on_b = engine::create("netlist.reference", b);
    on_a->step(5);
    engine::Snapshot snap;
    on_a->save(snap);
    EXPECT_EXIT(on_b->restore(snap), ::testing::ExitedWithCode(1),
                "design hash");
}

TEST(SnapshotDeathTest, LaneCountMismatchFatals)
{
    netlist::Netlist nl = snapshotDesign(4000);
    auto scalar = engine::create("netlist.compiled", nl);
    scalar->step(5);
    engine::Snapshot snap;
    scalar->save(snap);
    engine::CreateOptions options;
    options.lanes = 2;
    auto wide = engine::create("netlist.compiled", nl, options);
    // Plain restore refuses a lane-count change; forkLanes is the
    // sanctioned re-laning path (tested below).
    EXPECT_EXIT(wide->restore(snap), ::testing::ExitedWithCode(1),
                "forkLanes");
}

// ---------------------------------------------------------------------------
// forkLanes: checkpoint at cycle K, fork into N lanes, diverge — each
// lane must match a fresh scalar run given the same stimulus.
// ---------------------------------------------------------------------------

namespace {

/** Lane-divergent stimulus over the open-counter fixture: lanes
 *  1 mod 3 fault (assert-fail on the next step), lanes 2 mod 3 freeze
 *  (still Running at the horizon), the rest run to $finish. */
void
divergentStimulus(engine::Engine &eng, unsigned lane)
{
    if (lane % 3 == 1)
        engine::driveLane(eng, eng.bindInput("fault"), lane,
                          BitVector(1, 1));
    else if (lane % 3 == 2)
        engine::driveLane(eng, eng.bindInput("stop"), lane,
                          BitVector(1, 1));
}

void
forkVsFresh(const std::string &engine_name, unsigned n)
{
    SCOPED_TRACE(engine_name + " x" + std::to_string(n));
    netlist::Netlist nl = runtime::buildOpenCtr(8, 60);
    const auto signals = runtime::probeSignals(nl);
    const uint64_t warmup = 20, horizon = 50;

    // One warmup run, checkpointed at cycle K.
    auto warm = engine::create("netlist.compiled", nl);
    warm->step(warmup);
    engine::Snapshot snap;
    warm->save(snap);

    engine::CreateOptions options;
    options.lanes = n;
    auto ensemble = engine::create(engine_name, nl, options);
    engine::forkLanes(*ensemble, snap, 0, divergentStimulus);
    for (unsigned l = 0; l < n; ++l) {
        EXPECT_EQ(ensemble->laneCycle(l), warmup);
        EXPECT_EQ(ensemble->laneStatus(l), engine::Status::Running);
    }
    ensemble->step(horizon);

    // Differential: each lane vs a fresh scalar run that never went
    // through a snapshot at all.
    for (unsigned l = 0; l < n; ++l) {
        SCOPED_TRACE("lane " + std::to_string(l));
        auto fresh = engine::create("netlist.compiled", nl);
        fresh->step(warmup);
        divergentStimulus(*fresh, l);
        fresh->step(horizon);
        EXPECT_EQ(ensemble->laneStatus(l), fresh->status());
        EXPECT_EQ(ensemble->laneCycle(l), fresh->cycle());
        EXPECT_EQ(digestOf(*ensemble, l, signals),
                  digestOf(*fresh, 0, signals));
        if (l % 3 == 1)
            EXPECT_EQ(ensemble->laneStatus(l),
                      engine::Status::Failed);
        else if (l % 3 == 2)
            EXPECT_EQ(ensemble->laneStatus(l),
                      engine::Status::Running);
        else
            EXPECT_EQ(ensemble->laneStatus(l),
                      engine::Status::Finished);
    }
}

} // namespace

TEST(ForkLanes, TwoLanesMatchFreshRuns)
{
    forkVsFresh("netlist.compiled", 2);
}

TEST(ForkLanes, SevenLanesMatchFreshRuns)
{
    forkVsFresh("netlist.compiled", 7);
}

TEST(ForkLanes, SixteenLanesMatchFreshRuns)
{
    forkVsFresh("netlist.compiled", 16);
}

TEST(ForkLanes, ParallelEngineMatchesFreshRuns)
{
    forkVsFresh("netlist.parallel", 7);
}

TEST(ForkLanes, ScalarTargetIsPlainRestore)
{
    netlist::Netlist nl = snapshotDesign(4000);
    const auto signals = runtime::probeSignals(nl);
    auto warm = engine::create("netlist.reference", nl);
    warm->step(17);
    engine::Snapshot snap;
    warm->save(snap);
    auto target = engine::create("netlist.reference", nl);
    engine::forkLanes(*target, snap);
    EXPECT_EQ(target->cycle(), 17u);
    EXPECT_EQ(digestOf(*target, 0, signals),
              digestOf(*warm, 0, signals));
}
