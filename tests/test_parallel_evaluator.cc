/**
 * @file
 * Tests for the partition-parallel compiled evaluator and the
 * netlist-level partitioner behind it.
 *
 *  - Randomized differential property test: parallel vs reference on
 *    random netlists (tests/random_circuit.hh) across seeds x thread
 *    counts x both merge algorithms, cycle-exact on registers,
 *    memories, display transcript (side-effect ordering), status and
 *    failure message.  Run it under TSan via
 *    `cmake -DMANTICORE_SANITIZE=thread` + `ctest -L parallel`.
 *  - Determinism: identical waveform samples across repeated runs,
 *    thread counts, and merge algorithms.
 *  - Partition invariants: unique register/memory-write/effect
 *    ownership, operand-closed cones, process-count bound.
 *  - The serial engine's commit-ordering corner cases, replayed on
 *    the parallel engine (staging through the shared register file).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "designs/designs.hh"
#include "netlist/builder.hh"
#include "netlist/parallel_evaluator.hh"
#include "netlist/partition.hh"
#include "random_circuit.hh"
#include "runtime/waveform.hh"

using namespace manticore;
using netlist::EvalMode;
using netlist::EvalOptions;
using netlist::Evaluator;
using netlist::MemId;
using netlist::Netlist;
using netlist::NetlistPartition;
using netlist::NodeId;
using netlist::OpKind;
using netlist::ParallelCompiledEvaluator;
using netlist::RegId;
using netlist::SimStatus;
using manticore::testing::RandomCircuit;
using manticore::testing::randomValue;

namespace {

/** Step reference and parallel engines in lockstep, checking full
 *  architectural state every cycle. */
void
runDifferential(const Netlist &nl,
                const std::vector<unsigned> &input_widths, uint64_t seed,
                unsigned cycles, const EvalOptions &options)
{
    Evaluator ref(nl);
    ParallelCompiledEvaluator par(nl, options);
    Rng drive(seed ^ 0xd1ffe7e57ull);

    for (unsigned c = 0; c < cycles; ++c) {
        for (size_t i = 0; i < input_widths.size(); ++i) {
            BitVector v = randomValue(drive, input_widths[i]);
            std::string name = "in" + std::to_string(i);
            ref.setInput(name, v);
            par.setInput(name, v);
        }
        SimStatus a = ref.step();
        SimStatus b = par.step();
        ASSERT_EQ(a, b) << "status diverged at cycle " << c;
        ASSERT_EQ(ref.cycle(), par.cycle());
        ASSERT_EQ(ref.failureMessage(), par.failureMessage());
        for (size_t r = 0; r < nl.numRegisters(); ++r) {
            ASSERT_EQ(ref.regValue(static_cast<RegId>(r)),
                      par.regValue(static_cast<RegId>(r)))
                << "reg " << nl.reg(static_cast<RegId>(r)).name
                << " diverged at cycle " << c;
        }
        for (size_t m = 0; m < nl.numMemories(); ++m) {
            for (unsigned addr = 0;
                 addr < nl.memory(static_cast<MemId>(m)).depth; ++addr) {
                ASSERT_EQ(ref.memValue(static_cast<MemId>(m), addr),
                          par.memValue(static_cast<MemId>(m), addr))
                    << "mem " << m << "[" << addr
                    << "] diverged at cycle " << c;
            }
        }
        ASSERT_EQ(ref.displayLog().size(), par.displayLog().size())
            << "display count diverged at cycle " << c;
        if (a != SimStatus::Ok)
            break;
    }
    ASSERT_EQ(ref.displayLog(), par.displayLog());
}

std::string
sampledVcd(const Netlist &nl, const EvalOptions &options, unsigned cycles)
{
    ParallelCompiledEvaluator par(nl, options);
    runtime::WaveformRecorder rec(nl);
    for (unsigned c = 0; c < cycles && par.status() == SimStatus::Ok;
         ++c) {
        par.step();
        rec.sample(par, c);
    }
    std::ostringstream os;
    rec.writeVcd(os);
    return os.str();
}

} // namespace

TEST(ParallelEvaluator, RandomizedDifferential)
{
    // Rotate thread count and merge algorithm across seeds so the
    // matrix stays fast enough for every ctest run; the full sweep
    // over one circuit is below.
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        RandomCircuit gen(seed * 0x9e3779b9ull);
        Netlist nl = gen.build();
        EvalOptions options;
        options.numThreads = 1 + static_cast<unsigned>(seed % 4);
        options.mergeAlgo = (seed % 2) == 0 ? MergeAlgo::Balanced
                                            : MergeAlgo::Lpt;
        SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                     std::to_string(options.numThreads) + " algo " +
                     mergeAlgoName(options.mergeAlgo));
        runDifferential(nl, gen.inputWidths(), seed, 48, options);
    }
}

TEST(ParallelEvaluator, FullThreadSweepOnOneCircuit)
{
    RandomCircuit gen(0xa11ce5);
    Netlist nl = gen.build();
    for (MergeAlgo algo : {MergeAlgo::Balanced, MergeAlgo::Lpt}) {
        for (unsigned threads : {1u, 2u, 3u, 5u, 8u}) {
            EvalOptions options{threads, algo};
            SCOPED_TRACE(std::string(mergeAlgoName(algo)) + " x " +
                         std::to_string(threads));
            runDifferential(nl, gen.inputWidths(), 7, 32, options);
        }
    }
}

TEST(ParallelEvaluator, DesignChecksumsPass)
{
    // Every bundled design asserts its golden checksum and $finishes;
    // running to completion is an end-to-end functional test.  NoC
    // additionally carries live flit-conservation assertions.
    for (const char *name : {"mm", "noc", "jpeg"}) {
        for (const designs::Benchmark &bm : designs::allBenchmarks()) {
            if (bm.name != name)
                continue;
            auto par = netlist::makeEvaluator(
                bm.build(bm.defaultCheckCycles), EvalMode::Parallel,
                {4, MergeAlgo::Balanced});
            SimStatus st = par->run(bm.defaultCheckCycles + 8);
            EXPECT_EQ(st, SimStatus::Finished)
                << bm.name << ": " << par->failureMessage();
        }
    }
}

TEST(ParallelEvaluator, DeterministicWaveforms)
{
    Netlist nl = designs::buildMc(1u << 20);
    std::string base = sampledVcd(nl, {4, MergeAlgo::Balanced}, 200);
    EXPECT_FALSE(base.empty());
    // Two runs at the same thread count are bit-identical...
    EXPECT_EQ(base, sampledVcd(nl, {4, MergeAlgo::Balanced}, 200));
    // ...and so are other thread counts and the other merge
    // algorithm: the engine is exact, not approximately parallel.
    EXPECT_EQ(base, sampledVcd(nl, {2, MergeAlgo::Balanced}, 200));
    EXPECT_EQ(base, sampledVcd(nl, {3, MergeAlgo::Lpt}, 200));
}

TEST(ParallelEvaluator, PartitionInvariants)
{
    RandomCircuit gen(0xbee5);
    Netlist nl = gen.build();
    for (MergeAlgo algo : {MergeAlgo::Balanced, MergeAlgo::Lpt}) {
        NetlistPartition part = netlist::partitionNetlist(nl, 4, algo);
        ASSERT_LE(part.processes.size(), 4u);
        ASSERT_EQ(part.stats.mergedProcesses, part.processes.size());

        std::vector<int> reg_owner(nl.numRegisters(), -1);
        std::vector<int> write_owner(nl.memWrites().size(), -1);
        size_t effect_procs = 0;
        for (size_t p = 0; p < part.processes.size(); ++p) {
            const netlist::NetlistProcess &proc = part.processes[p];
            effect_procs += proc.effects ? 1 : 0;
            for (RegId r : proc.registers) {
                EXPECT_EQ(reg_owner[r], -1) << "register owned twice";
                reg_owner[r] = static_cast<int>(p);
            }
            for (uint32_t w : proc.memWrites) {
                EXPECT_EQ(write_owner[w], -1) << "write owned twice";
                write_owner[w] = static_cast<int>(p);
            }
            // Cones are operand-closed: every operand of a process
            // node is a source or inside the same process.
            std::vector<bool> in_proc(nl.numNodes(), false);
            for (NodeId id : proc.nodes)
                in_proc[id] = true;
            for (NodeId id : proc.nodes) {
                for (NodeId operand : nl.node(id).operands) {
                    OpKind k = nl.node(operand).kind;
                    bool source = k == OpKind::Const ||
                                  k == OpKind::Input ||
                                  k == OpKind::RegRead;
                    EXPECT_TRUE(source || in_proc[operand])
                        << "operand escapes cone";
                }
            }
        }
        for (size_t r = 0; r < nl.numRegisters(); ++r)
            EXPECT_NE(reg_owner[r], -1) << "register unowned";
        for (size_t w = 0; w < nl.memWrites().size(); ++w)
            EXPECT_NE(write_owner[w], -1) << "memory write unowned";
        // All writes to one memory stay in one process.
        for (size_t w = 1; w < nl.memWrites().size(); ++w)
            for (size_t v = 0; v < w; ++v)
                if (nl.memWrites()[w].mem == nl.memWrites()[v].mem)
                    EXPECT_EQ(write_owner[w], write_owner[v]);
        EXPECT_LE(effect_procs, 1u);
        EXPECT_GE(part.stats.totalCost, part.stats.estimatedMaxCost);
    }
}

TEST(ParallelEvaluator, RegisterSwapUsesPreCommitValues)
{
    // a.next = b, b.next = a: both commits must stage through the
    // private regions because their sources live in the shared
    // register file that is being overwritten in the same phase.
    netlist::CircuitBuilder b("swap");
    auto ra = b.reg("a", 64, 1);
    auto rb = b.reg("b", 64, 2);
    b.next(ra, rb.read());
    b.next(rb, ra.read());
    ParallelCompiledEvaluator par(b.build(), {2, MergeAlgo::Balanced});
    par.step();
    EXPECT_EQ(par.regValue("a").toUint64(), 2u);
    EXPECT_EQ(par.regValue("b").toUint64(), 1u);
    par.step();
    EXPECT_EQ(par.regValue("a").toUint64(), 1u);
    EXPECT_EQ(par.regValue("b").toUint64(), 2u);
}

TEST(ParallelEvaluator, MemWriteSeesPreCommitRegisterData)
{
    netlist::CircuitBuilder b("memorder");
    auto counter = b.reg("counter", 8, 5);
    b.next(counter, counter.read() + b.lit(8, 1));
    auto mem = b.memory("m", 8, 16);
    mem.write(b.lit(8, 3), counter.read(), b.lit(1, 1));
    ParallelCompiledEvaluator par(b.build(), {2, MergeAlgo::Balanced});
    par.step();
    EXPECT_EQ(par.memValue(0, 3).toUint64(), 5u);
    EXPECT_EQ(par.regValue("counter").toUint64(), 6u);
}

TEST(ParallelEvaluator, AssertFailureSkipsCommitLikeReference)
{
    auto build = [] {
        netlist::CircuitBuilder b("failing");
        auto c = b.reg("c", 16);
        b.next(c, c.read() + b.lit(16, 1));
        b.assertAlways(b.lit(1, 1), c.read() < b.lit(16, 4),
                       "counter escaped");
        return b.build();
    };
    Evaluator ref(build());
    ParallelCompiledEvaluator par(build(), {2, MergeAlgo::Balanced});
    EXPECT_EQ(ref.run(100), SimStatus::AssertFailed);
    EXPECT_EQ(par.run(100), SimStatus::AssertFailed);
    EXPECT_EQ(ref.cycle(), par.cycle());
    EXPECT_EQ(ref.failureMessage(), par.failureMessage());
    EXPECT_EQ(ref.regValue("c"), par.regValue("c"));
}

TEST(ParallelEvaluator, ThrowingDisplayCallbackDoesNotStrandWorkers)
{
    // An exception escaping step() between the two barriers must
    // still complete the commit rendezvous, or the workers stay
    // parked and the next step()/destructor deadlocks.
    netlist::CircuitBuilder b("thrower");
    auto c = b.reg("c", 16);
    b.next(c, c.read() + b.lit(16, 1));
    b.display(b.lit(1, 1), "c=%d", {c.read()});
    ParallelCompiledEvaluator par(b.build(), {3, MergeAlgo::Balanced});

    par.onDisplay = [](const std::string &) {
        throw std::runtime_error("sink failed");
    };
    EXPECT_THROW(par.step(), std::runtime_error);
    EXPECT_EQ(par.status(), SimStatus::Ok);
    EXPECT_EQ(par.cycle(), 0u); // the failed cycle did not commit

    par.onDisplay = nullptr;
    EXPECT_EQ(par.step(), SimStatus::Ok); // retried cleanly
    EXPECT_EQ(par.cycle(), 1u);
    EXPECT_EQ(par.regValue("c").toUint64(), 1u);
    // The aborted attempt rolled its display back: one line, not two.
    ASSERT_EQ(par.displayLog().size(), 1u);
    EXPECT_EQ(par.displayLog()[0], "c=0");
}

TEST(ParallelEvaluator, FactoryBuildsParallelMode)
{
    netlist::CircuitBuilder b("even_odd");
    auto counter = b.reg("counter", 16);
    b.next(counter, counter.read() + b.lit(16, 1));
    netlist::Signal is_even = !counter.read().bit(0);
    b.display(is_even, "%d is an even number", {counter.read()});
    b.display(!is_even, "%d is an odd number", {counter.read()});
    b.finish(counter.read() == b.lit(16, 20));
    Netlist nl = b.build();

    EXPECT_STREQ(netlist::evalModeName(EvalMode::Parallel), "parallel");
    auto par = netlist::makeEvaluator(nl, EvalMode::Parallel,
                                      {3, MergeAlgo::Lpt});
    auto ref = netlist::makeEvaluator(nl, EvalMode::Reference);
    EXPECT_EQ(par->run(100), SimStatus::Finished);
    EXPECT_EQ(ref->run(100), SimStatus::Finished);
    EXPECT_EQ(par->cycle(), ref->cycle());
    EXPECT_EQ(par->displayLog(), ref->displayLog());
}
