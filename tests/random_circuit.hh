/**
 * @file
 * Randomized-but-always-valid netlist generator shared by the
 * differential property tests (test_compiled_evaluator.cc,
 * test_parallel_evaluator.cc): covers every OpKind, widths 1..200
 * biased around the 64-bit limb boundary, memories with writes,
 * asserts, displays and $finish.
 */

#ifndef MANTICORE_TESTS_RANDOM_CIRCUIT_HH
#define MANTICORE_TESTS_RANDOM_CIRCUIT_HH

#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hh"
#include "support/rng.hh"

namespace manticore::testing {

inline BitVector
randomValue(Rng &rng, unsigned width)
{
    std::vector<uint64_t> limbs((width + 63) / 64);
    for (auto &l : limbs)
        l = rng.next();
    return BitVector::fromLimbs(width, limbs);
}

/** Grows a random but always-valid netlist over all OpKinds. */
class RandomCircuit
{
  public:
    static constexpr unsigned kMaxWidth = 200;

    explicit RandomCircuit(uint64_t seed) : _rng(seed), _netlist("rnd") {}

    netlist::Netlist
    build()
    {
        using namespace netlist;
        // Inputs, registers, memories first so the op soup can use them.
        unsigned num_inputs = 2 + _rng.below(3);
        for (unsigned i = 0; i < num_inputs; ++i) {
            Node n;
            n.kind = OpKind::Input;
            n.width = randomWidth();
            n.name = "in" + std::to_string(i);
            _inputWidths.push_back(n.width);
            record(_netlist.addNode(std::move(n)));
        }
        unsigned num_regs = 3 + _rng.below(4);
        for (unsigned r = 0; r < num_regs; ++r) {
            Register reg;
            reg.name = "r" + std::to_string(r);
            reg.width = randomWidth();
            reg.init = randomValue(_rng, reg.width);
            RegId id = _netlist.addRegister(std::move(reg));
            _regs.push_back(id);
            record(_netlist.reg(id).current);
        }
        unsigned num_mems = 1 + _rng.below(2);
        for (unsigned m = 0; m < num_mems; ++m) {
            Memory mem;
            mem.name = "m" + std::to_string(m);
            mem.width = randomWidth();
            mem.depth = 4 + static_cast<unsigned>(_rng.below(13));
            for (unsigned a = 0; a < mem.depth; ++a)
                mem.init.push_back(randomValue(_rng, mem.width));
            _mems.push_back(_netlist.addMemory(std::move(mem)));
        }

        unsigned num_ops = 40 + _rng.below(40);
        for (unsigned i = 0; i < num_ops; ++i)
            addRandomOp();

        for (RegId r : _regs)
            _netlist.connectNext(r, ofWidth(_netlist.reg(r).width));

        unsigned num_writes = 1 + _rng.below(3);
        for (unsigned i = 0; i < num_writes; ++i) {
            MemWrite w;
            w.mem = _mems[_rng.below(_mems.size())];
            w.addr = any();
            w.data = ofWidth(_netlist.memory(w.mem).width);
            w.enable = ofWidth(1);
            _netlist.addMemWrite(w);
        }

        unsigned num_displays = 1 + _rng.below(2);
        for (unsigned i = 0; i < num_displays; ++i) {
            Display d;
            d.enable = ofWidth(1);
            d.format = "a=%d b=%x";
            d.args = {any(), any()};
            _netlist.addDisplay(std::move(d));
        }

        if (_rng.chance(0.5)) {
            Assert a;
            a.enable = ofWidth(1);
            a.cond = ofWidth(1);
            a.message = "random assertion";
            _netlist.addAssert(std::move(a));
        }
        if (_rng.chance(0.5)) {
            Finish f;
            f.enable = ofWidth(1);
            _netlist.addFinish(f);
        }

        _netlist.validate();
        return std::move(_netlist);
    }

    const std::vector<unsigned> &inputWidths() const
    {
        return _inputWidths;
    }

  private:
    unsigned
    randomWidth()
    {
        // Bias towards the interesting boundaries around 64.
        switch (_rng.below(4)) {
          case 0: return 1 + static_cast<unsigned>(_rng.below(16));
          case 1: return 60 + static_cast<unsigned>(_rng.below(10));
          default:
            return 1 + static_cast<unsigned>(_rng.below(kMaxWidth));
        }
    }

    void
    record(netlist::NodeId id)
    {
        _pool.push_back(id);
        _byWidth[_netlist.node(id).width].push_back(id);
    }

    netlist::NodeId any() { return _pool[_rng.below(_pool.size())]; }

    /** A node of exactly width w (materialising a constant if the
     *  pool has none). */
    netlist::NodeId
    ofWidth(unsigned w)
    {
        using namespace netlist;
        auto it = _byWidth.find(w);
        if (it != _byWidth.end() && !it->second.empty() &&
            !_rng.chance(0.1))
            return it->second[_rng.below(it->second.size())];
        Node c;
        c.kind = OpKind::Const;
        c.width = w;
        c.value = randomValue(_rng, w);
        NodeId id = _netlist.addNode(std::move(c));
        record(id);
        return id;
    }

    void
    addRandomOp()
    {
        using namespace netlist;
        static const OpKind kinds[] = {
            OpKind::Const, OpKind::MemRead, OpKind::Add, OpKind::Sub,
            OpKind::Mul, OpKind::And, OpKind::Or, OpKind::Xor,
            OpKind::Not, OpKind::Shl, OpKind::Lshr, OpKind::Eq,
            OpKind::Ult, OpKind::Slt, OpKind::Mux, OpKind::Slice,
            OpKind::Concat, OpKind::ZExt, OpKind::SExt, OpKind::RedOr,
            OpKind::RedAnd, OpKind::RedXor,
        };
        OpKind kind = kinds[_rng.below(sizeof(kinds) / sizeof(kinds[0]))];
        Node n;
        n.kind = kind;
        switch (kind) {
          case OpKind::Const:
            n.width = randomWidth();
            n.value = randomValue(_rng, n.width);
            break;
          case OpKind::MemRead: {
            n.memId = _mems[_rng.below(_mems.size())];
            n.width = _netlist.memory(n.memId).width;
            n.operands = {any()};
            break;
          }
          case OpKind::Add:
          case OpKind::Sub:
          case OpKind::Mul:
          case OpKind::And:
          case OpKind::Or:
          case OpKind::Xor: {
            NodeId a = any();
            n.width = _netlist.node(a).width;
            n.operands = {a, ofWidth(n.width)};
            break;
          }
          case OpKind::Not: {
            NodeId a = any();
            n.width = _netlist.node(a).width;
            n.operands = {a};
            break;
          }
          case OpKind::Shl:
          case OpKind::Lshr: {
            NodeId a = any();
            n.width = _netlist.node(a).width;
            n.operands = {a, any()};
            break;
          }
          case OpKind::Eq:
          case OpKind::Ult:
          case OpKind::Slt: {
            NodeId a = any();
            n.width = 1;
            n.operands = {a, ofWidth(_netlist.node(a).width)};
            break;
          }
          case OpKind::Mux: {
            NodeId t = any();
            n.width = _netlist.node(t).width;
            n.operands = {ofWidth(1), t, ofWidth(n.width)};
            break;
          }
          case OpKind::Slice: {
            NodeId a = any();
            unsigned aw = _netlist.node(a).width;
            unsigned len = 1 + static_cast<unsigned>(_rng.below(aw));
            n.width = len;
            n.lo = static_cast<unsigned>(_rng.below(aw - len + 1));
            n.operands = {a};
            break;
          }
          case OpKind::Concat: {
            NodeId a = any();
            NodeId b = any();
            unsigned w =
                _netlist.node(a).width + _netlist.node(b).width;
            if (w > 250)
                return; // keep the soup bounded
            n.width = w;
            n.operands = {a, b};
            break;
          }
          case OpKind::ZExt:
          case OpKind::SExt: {
            NodeId a = any();
            unsigned aw = _netlist.node(a).width;
            n.width = aw + static_cast<unsigned>(_rng.below(66));
            if (n.width > 250)
                n.width = 250;
            n.operands = {a};
            break;
          }
          case OpKind::RedOr:
          case OpKind::RedAnd:
          case OpKind::RedXor:
            n.width = 1;
            n.operands = {any()};
            break;
          default:
            return;
        }
        record(_netlist.addNode(std::move(n)));
    }

    Rng _rng;
    netlist::Netlist _netlist;
    std::vector<netlist::NodeId> _pool;
    std::map<unsigned, std::vector<netlist::NodeId>> _byWidth;
    std::vector<netlist::RegId> _regs;
    std::vector<netlist::MemId> _mems;
    std::vector<unsigned> _inputWidths;
};

} // namespace manticore::testing

#endif // MANTICORE_TESTS_RANDOM_CIRCUIT_HH
