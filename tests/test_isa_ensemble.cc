/**
 * @file
 * isa.tape ensemble tests: the lane-strided SIMD interpreter must be
 * indistinguishable, lane for lane, from independent scalar runs.
 *
 *  - EnsembleCrossCheck vs N independent scalar goldens (the
 *    acceptance differential) for N in {1, 2, 7, 16},
 *  - snapshot round trips on a laned engine (one canonical section
 *    per requested lane) and forkLanes seeding,
 *  - staggered per-lane restores: lanes at different Vcycles finish
 *    at different wall steps, so frozen lanes must coexist with
 *    running ones with zero state drift,
 *  - lane padding invisibility: a 7-lane ensemble runs on 8-wide
 *    kernels, but the padding lane never shows up in lanes(),
 *    RunResult::lanes, stats, snapshots, or replay digests.
 *
 * ISA-level designs are closed (free inputs compile away), so lanes
 * diverge through restores rather than stimulus — which is exactly
 * the checkpoint-fork exploration workflow forkLanes exists for.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/crosscheck.hh"
#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "netlist/builder.hh"
#include "runtime/replay.hh"

using namespace manticore;

namespace {

/** Closed self-driving design touching every piece of ISA lane state:
 *  registers (one past the 16-bit chunk boundary), a written memory
 *  (scratch/global traffic), a $display and a $finish. */
netlist::Netlist
laneDesign(uint64_t finish_at)
{
    netlist::CircuitBuilder b("isa_ens");
    auto cyc = b.reg("cyc", 16);
    b.next(cyc, cyc.read() + b.lit(16, 1));
    auto acc = b.reg("acc", 40);
    b.next(acc, (acc.read() + cyc.read().zext(40)) ^
                    acc.read().shl(1));
    auto mem = b.memory("scratch", 16, 16);
    auto addr = cyc.read().slice(0, 4);
    mem.write(addr, mem.read(addr) + acc.read().trunc(16),
              b.lit(1, 1));
    b.display(cyc.read() == b.lit(16, 3), "acc=%d", {acc.read()});
    b.finish(cyc.read() == b.lit(16, finish_at));
    return b.build();
}

std::unique_ptr<engine::Engine>
makeLaned(const netlist::Netlist &nl, unsigned lanes)
{
    engine::CreateOptions options;
    options.lanes = lanes;
    return engine::create("isa.tape", nl, options);
}

uint64_t
digestOf(engine::Engine &engine, unsigned lane,
         const std::vector<runtime::ProbeSignal> &signals)
{
    return runtime::probeDigest(engine, lane, signals);
}

bool
hasStat(const std::vector<engine::Stat> &stats, const std::string &name,
        uint64_t *value = nullptr)
{
    for (const engine::Stat &s : stats)
        if (s.name == name) {
            if (value)
                *value = s.value;
            return true;
        }
    return false;
}

} // namespace

// ---------------------------------------------------------------------------
// Capability surface and lane accounting
// ---------------------------------------------------------------------------

TEST(IsaEnsemble, CapsStatsAndRunResult)
{
    netlist::Netlist nl = laneDesign(500);
    auto eng = makeLaned(nl, 7); // padded to 8-wide kernels inside
    EXPECT_TRUE(eng->has(engine::cap::kEnsemble));
    EXPECT_TRUE(eng->has(engine::cap::kBatchedStep));
    EXPECT_TRUE(eng->has(engine::cap::kSnapshot));
    EXPECT_EQ(eng->lanes(), 7u);

    engine::RunResult r = eng->step(5);
    EXPECT_EQ(r.lanes, 7u);
    EXPECT_EQ(r.cycles, 5u);
    for (unsigned l = 0; l < 7; ++l) {
        EXPECT_EQ(eng->laneCycle(l), 5u);
        EXPECT_EQ(eng->laneStatus(l), engine::Status::Running);
    }

    uint64_t v = 0;
    auto stats = eng->stats();
    ASSERT_TRUE(hasStat(stats, "lanes", &v));
    EXPECT_EQ(v, 7u);
    ASSERT_TRUE(hasStat(stats, "cycles", &v));
    EXPECT_EQ(v, 7u * 5u); // aggregate over the requested lanes only
    EXPECT_TRUE(hasStat(stats, "lane6.cycles"));

    // Instructions aggregate over the lanes: 7 identical lanes did
    // exactly 7x the work of one scalar run.
    auto scalar = engine::create("isa.tape", nl);
    scalar->step(5);
    uint64_t ens_instr = 0, one_instr = 0;
    ASSERT_TRUE(hasStat(stats, "instructions", &ens_instr));
    ASSERT_TRUE(hasStat(scalar->stats(), "instructions", &one_instr));
    EXPECT_EQ(ens_instr, 7u * one_instr);
}

TEST(IsaEnsemble, ScalarEngineIsUnchanged)
{
    netlist::Netlist nl = laneDesign(500);
    auto eng = engine::create("isa.tape", nl);
    EXPECT_FALSE(eng->has(engine::cap::kEnsemble));
    EXPECT_EQ(eng->lanes(), 1u);
    EXPECT_EQ(eng->step(5).lanes, 1u);
    auto stats = eng->stats();
    uint64_t v = 0;
    ASSERT_TRUE(hasStat(stats, "cycles", &v));
    EXPECT_EQ(v, 5u);
    EXPECT_FALSE(hasStat(stats, "lanes"));
    EXPECT_FALSE(hasStat(stats, "lane0.cycles"));
}

// ---------------------------------------------------------------------------
// The acceptance differential: EnsembleCrossCheck vs N independent
// scalar goldens, N in {1, 2, 7, 16}
// ---------------------------------------------------------------------------

namespace {

void
crossCheckVsScalarGoldens(unsigned n)
{
    SCOPED_TRACE("isa.tape x" + std::to_string(n));
    netlist::Netlist nl = laneDesign(30);

    std::vector<std::unique_ptr<engine::Engine>> goldens;
    std::vector<engine::Engine *> golden_ptrs;
    for (unsigned l = 0; l < n; ++l) {
        goldens.push_back(engine::create("isa.reference", nl));
        golden_ptrs.push_back(goldens.back().get());
    }
    auto subject = makeLaned(nl, n);

    engine::EnsembleCrossCheck cc(golden_ptrs, *subject);
    EXPECT_GT(cc.numPairedSignals(), 0u);
    engine::RunResult res = cc.run(200);
    EXPECT_EQ(res.status, engine::Status::Finished)
        << cc.divergence();
    EXPECT_TRUE(cc.divergence().empty()) << cc.divergence();
    for (unsigned l = 0; l < n; ++l)
        EXPECT_EQ(subject->laneStatus(l), engine::Status::Finished);
}

} // namespace

TEST(IsaEnsemble, CrossCheckOneLane) { crossCheckVsScalarGoldens(1); }
TEST(IsaEnsemble, CrossCheckTwoLanes) { crossCheckVsScalarGoldens(2); }
TEST(IsaEnsemble, CrossCheckSevenLanes) { crossCheckVsScalarGoldens(7); }
TEST(IsaEnsemble, CrossCheckSixteenLanes)
{
    crossCheckVsScalarGoldens(16);
}

// ---------------------------------------------------------------------------
// Snapshots: laned round trip, forkLanes seeding, staggered lanes
// ---------------------------------------------------------------------------

TEST(IsaEnsemble, SnapshotRoundTripLaned)
{
    netlist::Netlist nl = laneDesign(4000);
    const auto signals = runtime::probeSignals(nl);
    auto eng = makeLaned(nl, 7);
    eng->step(15);

    engine::Snapshot snap;
    eng->save(snap);
    EXPECT_EQ(snap.family, "isa");
    EXPECT_EQ(snap.lanes, 7u);
    ASSERT_EQ(snap.sections.size(), 7u);
    std::vector<uint64_t> d0;
    for (unsigned l = 0; l < 7; ++l)
        d0.push_back(digestOf(*eng, l, signals));

    eng->step(9);
    std::vector<uint64_t> d1;
    for (unsigned l = 0; l < 7; ++l) {
        d1.push_back(digestOf(*eng, l, signals));
        EXPECT_NE(d1[l], d0[l]); // the design never repeats state
    }

    eng->restore(snap);
    for (unsigned l = 0; l < 7; ++l) {
        EXPECT_EQ(eng->laneCycle(l), 15u);
        EXPECT_EQ(digestOf(*eng, l, signals), d0[l]);
    }
    eng->step(9);
    for (unsigned l = 0; l < 7; ++l)
        EXPECT_EQ(digestOf(*eng, l, signals), d1[l]);
}

TEST(IsaEnsemble, LaneSectionPortableToScalarEngines)
{
    // A lane section cut from an ensemble restores on a scalar engine
    // of either ISA interpreter: the per-lane byte format IS the
    // scalar format.
    netlist::Netlist nl = laneDesign(4000);
    const auto signals = runtime::probeSignals(nl);
    auto ens = makeLaned(nl, 4);
    ens->step(21);
    engine::Snapshot snap;
    ens->save(snap);

    engine::Snapshot one;
    one.family = snap.family;
    one.engine = snap.engine;
    one.designHash = snap.designHash;
    one.lanes = 1;
    one.cycle = snap.cycle;
    one.sections.push_back(snap.sections[2]); // any lane
    for (const char *target : {"isa.reference", "isa.tape"}) {
        SCOPED_TRACE(target);
        auto scalar = engine::create(target, nl);
        scalar->restore(one);
        EXPECT_EQ(scalar->cycle(), 21u);
        EXPECT_EQ(digestOf(*scalar, 0, signals),
                  digestOf(*ens, 2, signals));
        scalar->step(10);
    }
}

namespace {

void
forkVsFreshIsa(unsigned n)
{
    SCOPED_TRACE("isa.tape x" + std::to_string(n));
    netlist::Netlist nl = laneDesign(60);
    const auto signals = runtime::probeSignals(nl);
    const uint64_t warmup = 20, horizon = 100;

    auto warm = engine::create("isa.tape", nl);
    warm->step(warmup);
    engine::Snapshot snap;
    warm->save(snap);

    auto ensemble = makeLaned(nl, n);
    engine::forkLanes(*ensemble, snap);
    for (unsigned l = 0; l < n; ++l) {
        EXPECT_EQ(ensemble->laneCycle(l), warmup);
        EXPECT_EQ(ensemble->laneStatus(l), engine::Status::Running);
    }
    ensemble->step(horizon);

    for (unsigned l = 0; l < n; ++l) {
        SCOPED_TRACE("lane " + std::to_string(l));
        auto fresh = engine::create("isa.tape", nl);
        fresh->step(warmup + horizon);
        EXPECT_EQ(ensemble->laneStatus(l), engine::Status::Finished);
        EXPECT_EQ(ensemble->laneStatus(l), fresh->status());
        EXPECT_EQ(ensemble->laneCycle(l), fresh->cycle());
        EXPECT_EQ(digestOf(*ensemble, l, signals),
                  digestOf(*fresh, 0, signals));
    }
}

} // namespace

TEST(IsaEnsemble, ForkTwoLanesMatchFreshRuns) { forkVsFreshIsa(2); }
TEST(IsaEnsemble, ForkSevenLanesMatchFreshRuns) { forkVsFreshIsa(7); }
TEST(IsaEnsemble, ForkSixteenLanesMatchFreshRuns)
{
    forkVsFreshIsa(16);
}

TEST(IsaEnsemble, StaggeredLanesRunDecoupled)
{
    // The strongest laned-executor test: seed every lane from a
    // DIFFERENT cycle's checkpoint, so the lanes are at genuinely
    // different architectural states, reach $finish after different
    // numbers of ensemble steps, and the early finishers must freeze
    // bit-exactly while their neighbours keep executing.
    const unsigned n = 7;
    const uint64_t finish_at = 40; // terminal Vcycle = 41
    netlist::Netlist nl = laneDesign(finish_at);
    const auto signals = runtime::probeSignals(nl);

    // One scalar warmup run, checkpointed at cycles 5, 8, 11, ...
    std::vector<uint64_t> at;
    engine::Snapshot staggered;
    auto warm = engine::create("isa.tape", nl);
    for (unsigned l = 0; l < n; ++l) {
        at.push_back(5 + 3 * l);
        warm->step(at[l] - (l ? at[l - 1] : 0));
        engine::Snapshot one;
        warm->save(one);
        staggered.sections.push_back(one.sections[0]);
        staggered.family = one.family;
        staggered.engine = one.engine;
        staggered.designHash = one.designHash;
    }
    staggered.lanes = n;
    staggered.cycle = at.back();

    auto ensemble = makeLaned(nl, n);
    ensemble->restore(staggered);
    for (unsigned l = 0; l < n; ++l)
        EXPECT_EQ(ensemble->laneCycle(l), at[l]);

    // Step to a point where some lanes finished and some still run,
    // and compare every lane against an independent scalar run.
    const uint64_t mid = finish_at + 1 - at.back() + 2; // lanes 5,6 done
    ensemble->step(mid);
    bool running = false, finished = false;
    for (unsigned l = 0; l < n; ++l) {
        SCOPED_TRACE("lane " + std::to_string(l));
        auto golden = engine::create("isa.reference", nl);
        golden->step(at[l] + mid);
        EXPECT_EQ(ensemble->laneStatus(l), golden->status());
        EXPECT_EQ(ensemble->laneCycle(l), golden->cycle());
        EXPECT_EQ(digestOf(*ensemble, l, signals),
                  digestOf(*golden, 0, signals));
        running |= ensemble->laneStatus(l) == engine::Status::Running;
        finished |=
            ensemble->laneStatus(l) == engine::Status::Finished;
    }
    EXPECT_TRUE(running) << "mid-point picked badly: no running lane";
    EXPECT_TRUE(finished) << "mid-point picked badly: no frozen lane";

    // Run everything to the terminal and re-check.
    ensemble->step(1000);
    for (unsigned l = 0; l < n; ++l) {
        SCOPED_TRACE("lane " + std::to_string(l));
        auto golden = engine::create("isa.reference", nl);
        golden->step(1000);
        EXPECT_EQ(ensemble->laneStatus(l), engine::Status::Finished);
        EXPECT_EQ(ensemble->laneCycle(l), golden->cycle());
        EXPECT_EQ(digestOf(*ensemble, l, signals),
                  digestOf(*golden, 0, signals));
    }
}

// ---------------------------------------------------------------------------
// Padding invisibility: requested 7, instantiated 8, observable 7
// ---------------------------------------------------------------------------

TEST(IsaEnsemble, PaddingIsInvisible)
{
    netlist::Netlist nl = laneDesign(30);
    const auto signals = runtime::probeSignals(nl);
    for (const char *name : {"isa.tape", "netlist.compiled"}) {
        SCOPED_TRACE(name);
        engine::CreateOptions options;
        options.lanes = 7; // instantiated kernel width is 8
        auto eng = engine::create(name, nl, options);
        EXPECT_EQ(eng->lanes(), 7u);
        engine::RunResult r = eng->step(10);
        EXPECT_EQ(r.lanes, 7u);

        auto stats = eng->stats();
        uint64_t v = 0;
        ASSERT_TRUE(hasStat(stats, "lanes", &v));
        EXPECT_EQ(v, 7u);
        ASSERT_TRUE(hasStat(stats, "cycles", &v));
        EXPECT_EQ(v, 7u * 10u); // the padding lane contributes nothing
        EXPECT_TRUE(hasStat(stats, "lane6.cycles"));
        EXPECT_FALSE(hasStat(stats, "lane7.cycles"));

        engine::Snapshot snap;
        eng->save(snap);
        EXPECT_EQ(snap.lanes, 7u);
        EXPECT_EQ(snap.sections.size(), 7u);

        // Replay digests run over lanes 0..6 only, and every visible
        // lane digests equal to a scalar run (the padding lane cannot
        // bleed state into its neighbours).
        auto scalar = engine::create(name, nl);
        scalar->step(10);
        for (unsigned l = 0; l < 7; ++l)
            EXPECT_EQ(digestOf(*eng, l, signals),
                      digestOf(*scalar, 0, signals));
    }
}

TEST(IsaEnsembleDeathTest, PaddingLaneIsOutOfRange)
{
    netlist::Netlist nl = laneDesign(30);
    auto eng = makeLaned(nl, 7);
    eng->step(3);
    EXPECT_EXIT(eng->laneStatus(7), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(eng->laneCycle(7), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(IsaEnsembleDeathTest, MoreThanSixteenLanesFatals)
{
    netlist::Netlist nl = laneDesign(30);
    engine::CreateOptions options;
    options.lanes = 17;
    EXPECT_EXIT(engine::create("isa.tape", nl, options),
                ::testing::ExitedWithCode(1), "cap at 16 lanes");
}

TEST(IsaEnsembleDeathTest, ReferenceInterpreterStaysScalar)
{
    netlist::Netlist nl = laneDesign(30);
    engine::CreateOptions options;
    options.lanes = 2;
    EXPECT_EXIT(engine::create("isa.reference", nl, options),
                ::testing::ExitedWithCode(1), "no ensemble mode");
}

// ---------------------------------------------------------------------------
// Per-lane display transcripts
// ---------------------------------------------------------------------------

TEST(IsaEnsemble, PerLaneDisplayTranscripts)
{
    netlist::Netlist nl = laneDesign(30);
    auto eng = makeLaned(nl, 3);
    eng->step(100);
    for (unsigned l = 0; l < 3; ++l) {
        const auto &log = eng->laneDisplayLog(l);
        ASSERT_EQ(log.size(), 1u) << "lane " << l;
        EXPECT_NE(log[0].find("acc="), std::string::npos);
    }
}
