/**
 * @file
 * Parameterized lowering sweep: every word-level netlist operator, at
 * widths straddling the 16-bit chunk boundaries, compiled through the
 * full pipeline and executed on the cycle-level machine against the
 * reference evaluator.  This pins down each lowering recipe (carry
 * chains, schoolbook multiply, comparison chains, shift assemblies,
 * mux trees, extension fills, reductions) in isolation.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"
#include "support/rng.hh"

using namespace manticore;
using netlist::CircuitBuilder;
using netlist::Netlist;
using netlist::Signal;

namespace {

struct OpCase
{
    const char *name;
    unsigned width;
};

/** Build: two LFSR-ish source registers of the given width, the op
 *  under test feeding a result register. */
class LoweringOp : public ::testing::TestWithParam<OpCase>
{
  protected:
    /** Construct the op subnet; returns the result signal. */
    Signal
    buildOp(CircuitBuilder &b, const std::string &op, Signal a, Signal b2)
    {
        unsigned w = a.width();
        if (op == "add") return a + b2;
        if (op == "sub") return a - b2;
        if (op == "mul") return a * b2;
        if (op == "and") return a & b2;
        if (op == "or") return a | b2;
        if (op == "xor") return a ^ b2;
        if (op == "not") return ~a;
        if (op == "eq") return (a == b2).zext(w);
        if (op == "ult") return (a < b2).zext(w);
        if (op == "mux") return b.mux(b2.bit(0), a, b2);
        if (op == "shl_const") return a.shl(w / 3 + 1);
        if (op == "lshr_const") return a.lshr(w / 3 + 1);
        if (op == "shl_dyn")
            return a.shl(b2.slice(0, std::min(6u, w)).zext(8));
        if (op == "lshr_dyn")
            return a.lshr(b2.slice(0, std::min(6u, w)).zext(8));
        if (op == "slice") return a.slice(w / 4, w - w / 2).zext(w);
        if (op == "concat")
            return b.cat(a.slice(0, w / 2 + 1), b2).slice(0, w);
        if (op == "zext") return a.slice(0, w / 2 + 1).zext(w);
        if (op == "sext") return a.slice(0, w / 2 + 1).sext(w);
        if (op == "redor") return a.reduceOr().zext(w);
        if (op == "redand") return a.reduceAnd().zext(w);
        if (op == "redxor") return a.reduceXor().zext(w);
        ADD_FAILURE() << "unknown op " << op;
        return a;
    }

    void
    checkOp(const std::string &op, unsigned width)
    {
        CircuitBuilder b("op_" + op + "_" + std::to_string(width));
        Rng rng(width * 131 + op.size());

        BitVector ia(width), ib(width);
        for (unsigned i = 0; i < width; ++i) {
            if (rng.chance(0.5))
                ia.setBit(i, true);
            if (rng.chance(0.5))
                ib.setBit(i, true);
        }
        auto ra = b.reg("a", ia);
        auto rb = b.reg("b", ib);
        // Sources evolve so several cycles test several vectors.
        b.next(ra, ra.read() + (ra.read() ^ rb.read()));
        b.next(rb, rb.read() - ra.read());
        auto out = b.reg("out", width);
        b.next(out, buildOp(b, op, ra.read(), rb.read()));
        b.finish(b.lit(1, 0));
        Netlist nl = b.build();

        compiler::CompileOptions opts;
        opts.config.gridX = opts.config.gridY = 2;
        compiler::CompileResult cr = compiler::compile(nl, opts);

        netlist::Evaluator ref(nl);
        machine::Machine mach(cr.program, opts.config);
        for (int cycle = 0; cycle < 8; ++cycle) {
            ref.step();
            mach.runVcycle();
            const BitVector &want = ref.regValue(2); // "out"
            const auto &homes = cr.regChunkHome[2];
            for (size_t c = 0; c < homes.size(); ++c) {
                unsigned len = std::min(16u, width - 16 * unsigned(c));
                uint16_t expect = static_cast<uint16_t>(
                    want.slice(16 * unsigned(c), len).toUint64());
                ASSERT_EQ(mach.regValue(homes[c].process, homes[c].reg),
                          expect)
                    << op << " width " << width << " chunk " << c
                    << " cycle " << cycle;
            }
        }
    }
};

} // namespace

TEST_P(LoweringOp, MachineMatchesEvaluator)
{
    static const char *kOps[] = {
        "add", "sub", "mul", "and", "or", "xor", "not", "eq", "ult",
        "mux", "shl_const", "lshr_const", "shl_dyn", "lshr_dyn",
        "slice", "concat", "zext", "sext", "redor", "redand", "redxor"};
    for (const char *op : kOps) {
        checkOp(op, GetParam().width);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, LoweringOp,
    ::testing::Values(OpCase{"w4", 4}, OpCase{"w15", 15},
                      OpCase{"w16", 16}, OpCase{"w17", 17},
                      OpCase{"w31", 31}, OpCase{"w32", 32},
                      OpCase{"w33", 33}, OpCase{"w47", 47},
                      OpCase{"w48", 48}),
    [](const ::testing::TestParamInfo<OpCase> &info) {
        return std::string(info.param.name);
    });
