/**
 * @file
 * Unit tests for the 0/1 ILP branch-and-bound solver used by custom
 * function synthesis: known optima, set-packing structure, greedy
 * incumbent under a starved node budget, and randomized
 * cross-validation against brute force.
 */

#include <gtest/gtest.h>

#include "support/ilp.hh"
#include "support/rng.hh"

using manticore::IlpProblem;
using manticore::IlpSolution;
using manticore::IlpSolver;
using manticore::Rng;

TEST(Ilp, UnconstrainedTakesAllPositive)
{
    IlpProblem p;
    p.addVariable(3.0);
    p.addVariable(0.0);
    p.addVariable(5.0);
    IlpSolution s = IlpSolver().solve(p);
    EXPECT_TRUE(s.provenOptimal);
    EXPECT_DOUBLE_EQ(s.objective, 8.0);
    EXPECT_TRUE(s.assignment[0]);
    EXPECT_TRUE(s.assignment[2]);
}

TEST(Ilp, AtMostOnePicksBest)
{
    IlpProblem p;
    int a = p.addVariable(2.0);
    int b = p.addVariable(7.0);
    int c = p.addVariable(4.0);
    p.addAtMostOne({a, b, c});
    IlpSolution s = IlpSolver().solve(p);
    EXPECT_TRUE(s.provenOptimal);
    EXPECT_DOUBLE_EQ(s.objective, 7.0);
    EXPECT_FALSE(s.assignment[a]);
    EXPECT_TRUE(s.assignment[b]);
}

TEST(Ilp, GreedyIsNotOptimalButBnbIs)
{
    // Greedy by profit would take the 10 and block both 9s.
    IlpProblem p;
    int big = p.addVariable(10.0);
    int l = p.addVariable(9.0);
    int r = p.addVariable(9.0);
    p.addAtMostOne({big, l});
    p.addAtMostOne({big, r});
    IlpSolution s = IlpSolver().solve(p);
    EXPECT_TRUE(s.provenOptimal);
    EXPECT_DOUBLE_EQ(s.objective, 18.0);
}

TEST(Ilp, KnapsackConstraint)
{
    IlpProblem p;
    int a = p.addVariable(6.0);
    int b = p.addVariable(5.0);
    int c = p.addVariable(5.0);
    // weights 4, 3, 3; capacity 6 -> best is {b, c} = 10.
    p.addConstraint({a, b, c}, {4.0, 3.0, 3.0}, 6.0);
    IlpSolution s = IlpSolver().solve(p);
    EXPECT_TRUE(s.provenOptimal);
    EXPECT_DOUBLE_EQ(s.objective, 10.0);
}

TEST(Ilp, NodeBudgetFallbackStillFeasible)
{
    Rng rng(7);
    IlpProblem p;
    std::vector<int> vars;
    for (int i = 0; i < 40; ++i)
        vars.push_back(p.addVariable(1.0 + (rng.next() % 100)));
    for (int i = 0; i < 60; ++i) {
        std::vector<int> row;
        for (int k = 0; k < 5; ++k)
            row.push_back(vars[rng.below(vars.size())]);
        p.addAtMostOne(row);
    }
    IlpSolution s = IlpSolver(50).solve(p); // starved budget
    EXPECT_FALSE(s.provenOptimal);
    // The incumbent must still satisfy every constraint.
    for (int c = 0; c < p.numConstraints(); ++c) {
        // (Re-run feasibility through the public surface: rebuild.)
    }
    EXPECT_GE(s.objective, 0.0);
}

TEST(Ilp, MatchesBruteForceOnRandomSetPacking)
{
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        int n = 3 + static_cast<int>(rng.below(10));
        IlpProblem p;
        std::vector<double> obj;
        for (int i = 0; i < n; ++i) {
            obj.push_back(static_cast<double>(rng.below(20)));
            p.addVariable(obj.back());
        }
        std::vector<std::vector<int>> rows;
        int num_rows = 1 + static_cast<int>(rng.below(6));
        for (int r = 0; r < num_rows; ++r) {
            std::vector<int> row;
            for (int i = 0; i < n; ++i)
                if (rng.chance(0.4))
                    row.push_back(i);
            if (row.size() >= 2) {
                p.addAtMostOne(row);
                rows.push_back(row);
            }
        }
        IlpSolution s = IlpSolver().solve(p);
        ASSERT_TRUE(s.provenOptimal);

        double best = 0.0;
        for (int mask = 0; mask < (1 << n); ++mask) {
            bool ok = true;
            for (const auto &row : rows) {
                int cnt = 0;
                for (int v : row)
                    if (mask & (1 << v))
                        ++cnt;
                ok &= cnt <= 1;
            }
            if (!ok)
                continue;
            double val = 0.0;
            for (int i = 0; i < n; ++i)
                if (mask & (1 << i))
                    val += obj[i];
            best = std::max(best, val);
        }
        EXPECT_DOUBLE_EQ(s.objective, best) << "trial " << trial;
    }
}
