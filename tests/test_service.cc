/**
 * @file
 * Multi-tenant service tests (ctest label "service"; run under BOTH
 * sanitizer configs — the scheduler is the most concurrent code in
 * the repository).
 *
 * The load-bearing guarantees, each pinned here:
 *  - a tenant session is byte-identical to a dedicated engine run of
 *    the same design/stimulus, including at 32+ concurrent tenants;
 *  - fair round-robin: with one worker and R runnable sessions no
 *    session waits more than R quanta between visits;
 *  - admission control and per-session backpressure reject instead
 *    of queueing unboundedly (and reject instead of fatal()ing on
 *    bad tenant input — the server must not die);
 *  - cancel takes effect at the next quantum boundary; destroy is
 *    safe while a quantum is in flight; idle sessions consume no
 *    scheduler work; session engines own zero threads;
 *  - the registry is safe under concurrent engine::create;
 *  - the wire protocol round-trips all of the above over a
 *    socketpair, including detach-and-reattach across connections
 *    and periodic crash-recovery checkpoints.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include <sys/socket.h>

#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "engine/snapshot_io.hh"
#include "netlist/builder.hh"
#include "netlist/parallel_evaluator.hh"
#include "service/protocol.hh"
#include "service/session.hh"

using namespace manticore;
namespace fs = std::filesystem;

namespace {

/** Free-running 32-bit counter, $finish at `horizon`. */
netlist::Netlist
ctr32(uint64_t horizon)
{
    netlist::CircuitBuilder b("ctr32");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() == b.lit(32, horizon));
    return b.build();
}

/** 8-bit accumulator over a free input; never finishes. */
netlist::Netlist
acc8()
{
    netlist::CircuitBuilder b("acc8");
    auto in = b.input("in", 8);
    auto acc = b.reg("acc", 8);
    b.next(acc, acc.read() + in);
    return b.build();
}

service::SchedulerOptions
smallQuantum(uint64_t quantum = 64, unsigned workers = 2)
{
    service::SchedulerOptions o;
    o.numWorkers = workers;
    o.quantumCycles = quantum;
    return o;
}

} // namespace

// ---------------------------------------------------------------------------
// Correctness vs dedicated runs
// ---------------------------------------------------------------------------

TEST(Service, SingleTenantMatchesDedicatedSession)
{
    for (const char *name :
         {"netlist.reference", "netlist.compiled", "netlist.parallel",
          "isa.tape"}) {
        service::Scheduler sched(smallQuantum());
        std::string error;
        auto h = service::SessionHandle::create(sched, name,
                                                ctr32(1u << 20), {},
                                                &error);
        ASSERT_TRUE(h.valid()) << name << ": " << error;
        ASSERT_TRUE(h.submitRun(1000, &error)) << error;
        ASSERT_TRUE(h.wait());

        engine::Session dedicated(ctr32(1u << 20), name);
        dedicated.run(1000);

        service::PollResult p = h.poll();
        EXPECT_EQ(p.cycle, dedicated->cycle()) << name;
        EXPECT_EQ(p.status, dedicated->status()) << name;
        BitVector got;
        ASSERT_TRUE(h.readProbe("c", 0, &got, &error))
            << name << ": " << error;
        EXPECT_EQ(got, dedicated->read(dedicated->probe("c"))) << name;
    }
}

TEST(Service, ThirtyTwoTenantsMatchDedicatedRuns)
{
    // 32 concurrent tenants with tenant-specific stimulus across
    // three engine families on one shared pool; every result must be
    // byte-identical to a dedicated engine run.
    constexpr unsigned kTenants = 32;
    service::Scheduler sched(smallQuantum(64));
    std::vector<service::SessionHandle> handles;
    std::string error;

    for (unsigned t = 0; t < kTenants; ++t) {
        if (t < 24) {
            const char *eng =
                t < 16 ? "netlist.compiled" : "netlist.parallel";
            auto h = service::SessionHandle::create(sched, eng, acc8(),
                                                    {}, &error);
            ASSERT_TRUE(h.valid()) << error;
            // poke -> run -> poke -> run exercises submit ordering.
            ASSERT_TRUE(h.submitPoke("in", service::kAllLanes,
                                     BitVector(8, t + 1), &error))
                << error;
            ASSERT_TRUE(h.submitRun(100 + t, &error)) << error;
            ASSERT_TRUE(h.submitPoke("in", service::kAllLanes,
                                     BitVector(8, 2 * t + 1), &error));
            ASSERT_TRUE(h.submitRun(50, &error)) << error;
            handles.push_back(std::move(h));
        } else {
            auto h = service::SessionHandle::create(
                sched, "isa.tape", ctr32(1u << 20), {}, &error);
            ASSERT_TRUE(h.valid()) << error;
            ASSERT_TRUE(h.submitRun(200 + t, &error)) << error;
            handles.push_back(std::move(h));
        }
    }

    for (unsigned t = 0; t < kTenants; ++t) {
        ASSERT_TRUE(handles[t].wait()) << "tenant " << t;
        service::PollResult p = handles[t].poll();
        ASSERT_EQ(p.phase, service::Phase::Ready) << p.error;

        if (t < 24) {
            auto golden = engine::create(
                t < 16 ? "netlist.compiled" : "netlist.parallel",
                acc8());
            engine::InputHandle in = golden->bindInput("in");
            golden->setInput(in, BitVector(8, t + 1));
            golden->step(100 + t);
            golden->setInput(in, BitVector(8, 2 * t + 1));
            golden->step(50);
            BitVector got;
            ASSERT_TRUE(handles[t].readProbe("acc", 0, &got, &error))
                << error;
            EXPECT_EQ(got, golden->read(golden->probe("acc")))
                << "tenant " << t;
            EXPECT_EQ(p.cycle, golden->cycle()) << "tenant " << t;
        } else {
            BitVector got;
            ASSERT_TRUE(handles[t].readProbe("c", 0, &got, &error))
                << error;
            EXPECT_EQ(got.toUint64(), 200 + t) << "tenant " << t;
            EXPECT_EQ(p.cycle, 200 + t) << "tenant " << t;
        }
        EXPECT_EQ(p.completedRuns, p.submittedRuns) << "tenant " << t;
    }
}

TEST(Service, EnsembleTenantMatchesDedicatedEnsemble)
{
    service::Scheduler sched(smallQuantum());
    engine::CreateOptions options;
    options.lanes = 4;
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", acc8(), options, &error);
    ASSERT_TRUE(h.valid()) << error;
    for (unsigned l = 0; l < 4; ++l)
        ASSERT_TRUE(
            h.submitPoke("in", l, BitVector(8, 3 * l + 1), &error))
            << error;
    ASSERT_TRUE(h.submitRun(77, &error)) << error;
    ASSERT_TRUE(h.wait());

    auto golden = engine::create("netlist.compiled", acc8(), options);
    engine::InputHandle in = golden->bindInput("in");
    for (unsigned l = 0; l < 4; ++l)
        golden->setInputLane(in, l, BitVector(8, 3 * l + 1));
    golden->step(77);

    engine::ProbeHandle acc = golden->probe("acc");
    for (unsigned l = 0; l < 4; ++l) {
        BitVector got;
        ASSERT_TRUE(h.readProbe("acc", l, &got, &error)) << error;
        EXPECT_EQ(got, golden->readLane(acc, l)) << "lane " << l;
    }
    std::vector<service::LaneView> lanes = h.laneViews();
    ASSERT_EQ(lanes.size(), 4u);
    for (unsigned l = 0; l < 4; ++l)
        EXPECT_EQ(lanes[l].cycle, 77u);
}

// ---------------------------------------------------------------------------
// Scheduling semantics
// ---------------------------------------------------------------------------

TEST(Service, FairnessBoundOneWorker)
{
    // With ONE worker and R runnable sessions, strict tail re-queue
    // means no session waits more than R quanta between visits.
    constexpr unsigned kSessions = 4;
    std::vector<service::SessionId> trace;
    service::SchedulerOptions o;
    o.numWorkers = 1;
    o.quantumCycles = 64;
    o.quantumTrace = [&](service::SessionId id) {
        trace.push_back(id); // under the scheduler lock
    };
    service::Scheduler sched(o);

    std::vector<service::SessionHandle> handles;
    std::string error;
    for (unsigned i = 0; i < kSessions; ++i) {
        auto h = service::SessionHandle::create(
            sched, "netlist.compiled", ctr32(1u << 20), {}, &error);
        ASSERT_TRUE(h.valid()) << error;
        ASSERT_TRUE(h.wait()); // engine constructed, session idle
        handles.push_back(std::move(h));
    }
    for (auto &h : handles) // all runnable from here on
        ASSERT_TRUE(h.submitRun(64 * 20, &error)) << error;
    for (auto &h : handles)
        ASSERT_TRUE(h.wait());

    // A session is continuously runnable between consecutive RUN
    // quanta (its run still has cycles queued), so those gaps are
    // where the bound must hold.  Its FIRST occurrence is the
    // construction quantum — between that and its first run quantum
    // it had nothing queued (the submits happen later, and a slow
    // submitting thread, e.g. under a sanitizer, legitimately lets
    // earlier sessions drain meanwhile), so that gap is excluded.
    for (unsigned i = 0; i < kSessions; ++i) {
        service::SessionId id = handles[i].id();
        size_t last = 0, visits = 0;
        for (size_t pos = 0; pos < trace.size(); ++pos) {
            if (trace[pos] != id)
                continue;
            ++visits;
            if (visits > 2)
                EXPECT_LE(pos - last, kSessions)
                    << "session " << id << " starved at " << pos;
            if (visits >= 2)
                last = pos;
        }
        EXPECT_EQ(visits, 20u + 1) << "session " << id
                                   << " (20 run + 1 create quanta)";
    }
}

TEST(Service, BackpressureBoundsQueue)
{
    service::SchedulerOptions o = smallQuantum(1u << 20, 1);
    o.maxQueuedPerSession = 3;
    service::Scheduler sched(o);
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", ctr32(1u << 30), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.wait());

    // A full-quantum run occupies the worker (and one queue slot)
    // for many milliseconds; the submits behind it then fill the
    // bounded queue deterministically.
    ASSERT_TRUE(h.submitRun(1u << 20, &error)) << error;
    unsigned accepted = 0;
    std::string reject;
    for (unsigned i = 0; i < 16; ++i) {
        if (h.submitRun(1, &error))
            ++accepted;
        else
            reject = error;
    }
    EXPECT_LE(accepted, o.maxQueuedPerSession);
    EXPECT_NE(reject.find("backpressure"), std::string::npos) << reject;

    ASSERT_TRUE(h.wait());
    // Drained: submits are accepted again.
    EXPECT_TRUE(h.submitRun(1, &error)) << error;
    service::PollResult p = h.poll();
    EXPECT_GT(p.submittedRuns, 0u);
    auto stats = h.meter();
    bool found = false;
    for (const engine::Stat &s : stats)
        if (s.name == "service.rejected") {
            found = true;
            EXPECT_GT(s.value, 0u);
        }
    EXPECT_TRUE(found);
}

TEST(Service, AdmissionControlCapsSessions)
{
    service::SchedulerOptions o = smallQuantum();
    o.maxSessions = 2;
    service::Scheduler sched(o);
    std::string error;
    auto a = service::SessionHandle::create(sched, "netlist.compiled",
                                            ctr32(1000), {}, &error);
    auto b = service::SessionHandle::create(sched, "netlist.compiled",
                                            ctr32(1000), {}, &error);
    ASSERT_TRUE(a.valid());
    ASSERT_TRUE(b.valid());
    auto c = service::SessionHandle::create(sched, "netlist.compiled",
                                            ctr32(1000), {}, &error);
    EXPECT_FALSE(c.valid());
    EXPECT_NE(error.find("admission"), std::string::npos) << error;

    // Destroying one frees a slot.
    b = service::SessionHandle();
    auto d = service::SessionHandle::create(sched, "netlist.compiled",
                                            ctr32(1000), {}, &error);
    EXPECT_TRUE(d.valid()) << error;
}

TEST(Service, BadTenantInputIsRejectedNotFatal)
{
    service::Scheduler sched(smallQuantum());
    std::string error;

    EXPECT_EQ(sched.createSession("no.such.engine", ctr32(100), {},
                                  &error),
              0u);
    EXPECT_NE(error.find("no such engine"), std::string::npos);

    engine::CreateOptions lanes8;
    lanes8.lanes = 8;
    EXPECT_EQ(sched.createSession("netlist.reference", ctr32(100),
                                  lanes8, &error),
              0u); // no ensemble mode
    engine::CreateOptions lanes32;
    lanes32.lanes = 32;
    EXPECT_EQ(sched.createSession("isa.tape", ctr32(100), lanes32,
                                  &error),
              0u); // beyond the 16-lane isa cap

    auto h = service::SessionHandle::create(sched, "netlist.compiled",
                                            acc8(), {}, &error);
    ASSERT_TRUE(h.valid());
    EXPECT_FALSE(
        h.submitPoke("bogus", 0, BitVector(8, 1), &error));
    EXPECT_NE(error.find("no such input"), std::string::npos);
    EXPECT_FALSE(h.submitPoke("in", 0, BitVector(16, 1), &error));
    EXPECT_NE(error.find("8 bit"), std::string::npos) << error;
    EXPECT_FALSE(h.submitPoke("in", 3, BitVector(8, 1), &error));
    EXPECT_NE(error.find("lane"), std::string::npos) << error;
    // An open design on an input-less engine would fatal() in that
    // engine's compiler — admission must reject it instead.
    EXPECT_EQ(sched.createSession("isa.tape", acc8(), {}, &error), 0u);
    EXPECT_NE(error.find("open designs"), std::string::npos) << error;
    // And on a closed design, poking an input-less engine is an error.
    auto i = service::SessionHandle::create(sched, "isa.tape",
                                            ctr32(100), {}, &error);
    ASSERT_TRUE(i.valid());
    EXPECT_FALSE(i.submitPoke("in", 0, BitVector(8, 1), &error));
    EXPECT_NE(error.find("no free inputs"), std::string::npos) << error;

    // The scheduler survived all of the above.
    EXPECT_TRUE(h.submitRun(10, &error)) << error;
    EXPECT_TRUE(h.wait());
}

TEST(Service, CancelTakesEffectAtQuantumBoundary)
{
    service::Scheduler sched(smallQuantum(128, 1));
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", ctr32(1u << 30), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.wait());
    ASSERT_TRUE(h.submitRun(1u << 24, &error)) << error; // very long
    EXPECT_TRUE(h.cancel());
    ASSERT_TRUE(h.wait());
    service::PollResult p = h.poll();
    // The run is gone well before completion; whatever ran is a whole
    // number of quanta.
    EXPECT_LT(p.cycle, uint64_t(1) << 24);
    EXPECT_EQ(p.queued, 0u);
    EXPECT_EQ(p.canceledRuns + p.completedRuns, 1u);
    // The session remains usable.
    uint64_t before = p.cycle;
    ASSERT_TRUE(h.submitRun(64, &error)) << error;
    ASSERT_TRUE(h.wait());
    EXPECT_EQ(h.poll().cycle, before + 64);
}

TEST(Service, DestroyWhileRunningIsSafe)
{
    service::Scheduler sched(smallQuantum(1u << 16, 2));
    std::string error;
    for (int round = 0; round < 8; ++round) {
        auto h = service::SessionHandle::create(
            sched, "netlist.compiled", ctr32(1u << 30), {}, &error);
        ASSERT_TRUE(h.valid()) << error;
        ASSERT_TRUE(h.submitRun(1u << 22, &error)) << error;
        // Destroy with the quantum (likely) in flight; the handle
        // destructor is the destroy.
    }
    // Scheduler still serves new work.
    auto h = service::SessionHandle::create(sched, "netlist.compiled",
                                            ctr32(1u << 20), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.submitRun(100, &error)) << error;
    ASSERT_TRUE(h.wait());
    EXPECT_EQ(h.poll().cycle, 100u);
    EXPECT_EQ(sched.numSessions(), 1u);
}

TEST(Service, IdleSessionsConsumeNoSchedulerWork)
{
    service::Scheduler sched(smallQuantum(64, 2));
    std::string error;
    std::vector<service::SessionHandle> idle;
    for (int i = 0; i < 16; ++i) {
        auto h = service::SessionHandle::create(
            sched, "netlist.compiled", ctr32(1u << 20), {}, &error);
        ASSERT_TRUE(h.valid()) << error;
        ASSERT_TRUE(h.wait());
        idle.push_back(std::move(h));
    }
    auto quanta = [&] {
        for (const engine::Stat &s : sched.serviceStats())
            if (s.name == "quanta")
                return s.value;
        return uint64_t(0);
    };
    uint64_t before = quanta();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // 16 idle sessions, zero quanta executed: workers are parked on
    // the condvar, not polling.
    EXPECT_EQ(quanta(), before);
}

TEST(Service, SessionEnginesOwnZeroThreads)
{
    // The ownership inversion itself: an engine created for service
    // use must execute entirely on the borrowed scheduler worker.
    // numThreads=1 is what Scheduler::createSession clamps to; pin
    // that this really means an empty owned pool.
    netlist::EvalOptions one;
    one.numThreads = 1;
    netlist::ParallelCompiledEvaluator ev(ctr32(1000), one);
    EXPECT_EQ(ev.ownedThreads(), 0u);
    EXPECT_EQ(ev.numThreads(), 1u);
}

TEST(Service, WaitTimesOut)
{
    service::Scheduler sched(smallQuantum(256, 1));
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", ctr32(1u << 30), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.submitRun(1u << 26, &error)) << error;
    EXPECT_FALSE(h.wait(30)); // 30 ms is not enough for 64M cycles
    h.cancel();
    EXPECT_TRUE(h.wait());
}

TEST(Service, RunToAbsoluteCycle)
{
    service::Scheduler sched(smallQuantum(64, 1));
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", ctr32(1u << 20), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.submitRunTo(500, &error)) << error;
    ASSERT_TRUE(h.wait());
    EXPECT_EQ(h.poll().cycle, 500u);
    // An already-satisfied target completes immediately.
    ASSERT_TRUE(h.submitRunTo(100, &error)) << error;
    ASSERT_TRUE(h.wait());
    EXPECT_EQ(h.poll().cycle, 500u);
    EXPECT_EQ(h.poll().completedRuns, 2u);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan targets)
// ---------------------------------------------------------------------------

TEST(ServiceStress, TenantsSubmitPollCancelConcurrently)
{
    service::Scheduler sched(smallQuantum(64, 2));
    constexpr unsigned kThreads = 8, kRounds = 6;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> tenants;
    for (unsigned t = 0; t < kThreads; ++t) {
        tenants.emplace_back([&, t] {
            for (unsigned round = 0; round < kRounds; ++round) {
                std::string error;
                auto h = service::SessionHandle::create(
                    sched, "netlist.compiled", acc8(), {}, &error);
                if (!h.valid()) {
                    ++failures;
                    return;
                }
                h.submitPoke("in", service::kAllLanes,
                             BitVector(8, t + 1), &error);
                h.submitRun(300 + 17 * t, &error);
                h.poll();
                if (round % 3 == 1)
                    h.cancel();
                if (round % 3 == 2) {
                    h.wait();
                    BitVector v;
                    if (!h.readProbe("acc", 0, &v, &error))
                        ++failures;
                    uint64_t want =
                        ((300 + 17 * t) * (t + 1)) & 0xff;
                    if (v.toUint64() != want)
                        ++failures;
                }
                h.meter();
                h.laneViews();
                // handle dtor destroys, sometimes mid-quantum
            }
        });
    }
    for (std::thread &t : tenants)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(sched.numSessions(), 0u);
}

TEST(ServiceStress, ConcurrentEngineCreateIsSafe)
{
    // The registry thread-safety satellite: first-touch registration
    // and create() racing from many threads.
    constexpr unsigned kThreads = 8;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const char *name =
                t % 2 ? "netlist.compiled" : "isa.tape";
            for (int i = 0; i < 4; ++i) {
                auto eng = engine::create(name, ctr32(1u << 20));
                if (eng->step(50).cycles != 50)
                    ++failures;
                if (!engine::find(name))
                    ++failures;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
}

// ---------------------------------------------------------------------------
// Periodic checkpointing (crash recovery)
// ---------------------------------------------------------------------------

TEST(Service, PeriodicCheckpointsAreRestorable)
{
    fs::path dir =
        fs::temp_directory_path() / "manticore_service_ckpt_test";
    fs::remove_all(dir);
    service::SchedulerOptions o = smallQuantum(128, 1);
    o.checkpointEveryCycles = 512;
    o.checkpointDir = dir.string();
    service::Scheduler sched(o);
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", ctr32(1u << 20), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.submitRun(3000, &error)) << error;
    ASSERT_TRUE(h.wait());

    fs::path file =
        dir / ("session-" + std::to_string(h.id()) + ".mtsnap");
    ASSERT_TRUE(fs::exists(file)) << file;
    bool counted = false;
    for (const engine::Stat &s : h.meter())
        if (s.name == "service.checkpoints") {
            counted = true;
            EXPECT_GE(s.value, 1u);
        }
    EXPECT_TRUE(counted);

    // Crash recovery: a fresh engine restored from the periodic
    // checkpoint resumes mid-run with consistent state.
    engine::Snapshot snap = engine::readSnapshotFile(file.string());
    EXPECT_GE(snap.cycle, 512u);
    EXPECT_LE(snap.cycle, 3000u);
    auto resumed = engine::create("netlist.compiled", ctr32(1u << 20));
    resumed->restore(snap);
    EXPECT_EQ(resumed->cycle(), snap.cycle);
    EXPECT_EQ(resumed->read(resumed->probe("c")).toUint64(),
              snap.cycle);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

namespace {

/** In-process client/server pair over a socketpair: full protocol
 *  coverage without binary-path coupling, and the server code runs
 *  under the test's sanitizer. */
struct ProtoFixture
{
    service::Scheduler sched;
    std::atomic<bool> stop{false};
    service::Server server;
    service::Client client;
    std::thread thread;

    explicit ProtoFixture(std::string save_dir = "")
        : sched(smallQuantum(256, 2)), server(sched, &stop)
    {
        // Before connect(): the connection thread reads the save dir,
        // so it must be set before that thread exists.
        if (!save_dir.empty())
            server.setSaveDir(std::move(save_dir));
        connect();
    }

    void
    connect()
    {
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        thread = std::thread(
            [this, fd = fds[0]] { server.serveConnection(fd); });
        client.adopt(fds[1]);
    }

    void
    reconnect()
    {
        client.request("quit");
        client.close();
        thread.join();
        connect();
    }

    ~ProtoFixture()
    {
        if (client.connected())
            client.request("quit");
        client.close();
        if (thread.joinable())
            thread.join();
    }
};

} // namespace

TEST(ServiceProtocol, EndToEndSession)
{
    ProtoFixture fx;
    std::string detail;
    ASSERT_TRUE(fx.client.hello(&detail));
    EXPECT_NE(detail.find("proto=1"), std::string::npos) << detail;

    // Catalog listings round-trip.
    EXPECT_GE(fx.client.request("designs").lines.size(), 11u);
    EXPECT_EQ(fx.client.request("engines").lines.size(),
              engine::list().size());

    std::string error;
    service::SessionId id = fx.client.newSession(
        "acc8", "netlist.compiled", 1, 0, &error);
    ASSERT_NE(id, 0u) << error;
    ASSERT_TRUE(
        fx.client.poke(id, "in", service::kAllLanes,
                       BitVector(8, 5), &error))
        << error;
    ASSERT_TRUE(fx.client.run(id, 60, &error)) << error;
    ASSERT_TRUE(fx.client.wait(id));

    service::Client::Poll p = fx.client.poll(id);
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.cycle, 60u);
    EXPECT_EQ(p.phase, "ready");
    EXPECT_EQ(p.done, 1u);

    BitVector v;
    ASSERT_TRUE(fx.client.probe(id, "acc", 0, &v, &error)) << error;
    EXPECT_EQ(v.toUint64(), (60 * 5) & 0xff);
    EXPECT_EQ(v.width(), 8u);

    auto meter = fx.client.meter(id);
    bool saw_cycles = false;
    for (const auto &kv : meter)
        if (kv.first == "service.cycles") {
            saw_cycles = true;
            EXPECT_EQ(kv.second, 60u);
        }
    EXPECT_TRUE(saw_cycles);

    // A self-checking design's transcript comes through the log.
    service::SessionId mm = fx.client.newSession(
        "mm", "netlist.compiled", 1, 0, &error);
    ASSERT_NE(mm, 0u) << error;
    ASSERT_TRUE(fx.client.run(mm, 1000, &error)) << error;
    ASSERT_TRUE(fx.client.wait(mm));
    EXPECT_EQ(fx.client.poll(mm).status, "finished");
    std::vector<std::string> log = fx.client.displayLog(mm, 0);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_NE(log[0].find("checksum"), std::string::npos) << log[0];

    EXPECT_TRUE(fx.client.destroy(id));
    EXPECT_TRUE(fx.client.destroy(mm));
    EXPECT_EQ(fx.sched.numSessions(), 0u);
}

TEST(ServiceProtocol, ErrorsAreRepliesNotDeaths)
{
    ProtoFixture fx;
    auto expectErr = [&](const std::string &req,
                         const std::string &needle) {
        service::Client::Reply r = fx.client.request(req);
        EXPECT_FALSE(r.ok) << req;
        EXPECT_NE(r.detail.find(needle), std::string::npos)
            << req << " -> " << r.detail;
    };
    expectErr("frobnicate", "unknown command");
    expectErr("new nope netlist.compiled", "no such design");
    expectErr("new ctr32 nope", "no such engine");
    expectErr("new ctr32 netlist.reference 8", "ensemble");
    expectErr("run 999 100", "no such session");
    expectErr("run abc 100", "session id");
    expectErr("poll 999", "no such session");
    expectErr("probe 999 c 0", "no such session");

    std::string error;
    service::SessionId id = fx.client.newSession(
        "acc8", "netlist.compiled", 1, 0, &error);
    ASSERT_NE(id, 0u) << error;
    std::string sid = std::to_string(id);
    expectErr("poke " + sid + " bogus 0 00", "no such input");
    expectErr("poke " + sid + " in 0 zz", "bad value");
    expectErr("poke " + sid + " in 0 123", "bad value"); // 3 digits
    expectErr("probe " + sid + " bogus 0", "no such signal");
    expectErr("probe " + sid + " acc 7", "lane");

    // Numeric hardening: strtoull would accept "-1" (wrapping to
    // 2^64-1) and narrowing to unsigned would wrap 2^32+1 to 1 and
    // alias lane 4294967295 to the kAllLanes broadcast wildcard.
    expectErr("run " + sid + " -1", "cycle count");
    expectErr("new ctr32 netlist.compiled 4294967297", "lane count");
    expectErr("new ctr32 netlist.compiled +2", "lane count");
    expectErr("poke " + sid + " in 4294967295 05", "bad lane");
    expectErr("probe " + sid + " acc 4294967295", "probe");

    // A tenant-named unwritable save path is an err reply, not a
    // dead daemon (writeSnapshotFile's fatal() path must be unused
    // here).
    expectErr("save " + sid + " /manticore-no-such-dir/x.mtsnap",
              "cannot write");

    // After all that abuse, the session still works.
    ASSERT_TRUE(fx.client.run(id, 10, &error)) << error;
    ASSERT_TRUE(fx.client.wait(id));
    EXPECT_EQ(fx.client.poll(id).cycle, 10u);
}

TEST(ServiceProtocol, DetachSurvivesConnectionDeath)
{
    ProtoFixture fx;
    std::string error;
    service::SessionId kept = fx.client.newSession(
        "ctr32", "netlist.compiled", 1, 1u << 20, &error);
    ASSERT_NE(kept, 0u) << error;
    service::SessionId dropped = fx.client.newSession(
        "ctr32", "netlist.compiled", 1, 1u << 20, &error);
    ASSERT_NE(dropped, 0u) << error;

    // Detach one with a long run still in flight.
    ASSERT_TRUE(fx.client.run(kept, 1u << 18, &error)) << error;
    ASSERT_TRUE(fx.client.detach(kept));
    fx.reconnect(); // old connection's owned sessions die with it

    EXPECT_EQ(fx.sched.numSessions(), 1u);
    service::Client::Poll p = fx.client.poll(kept);
    EXPECT_TRUE(p.ok); // detached session survived, and is pollable
    EXPECT_FALSE(fx.client.poll(dropped).ok);
    ASSERT_TRUE(fx.client.wait(kept));
    EXPECT_EQ(fx.client.poll(kept).cycle, uint64_t(1) << 18);
    EXPECT_TRUE(fx.client.destroy(kept));
}

TEST(ServiceProtocol, ValueEncodingRoundTrips)
{
    for (unsigned width : {1u, 4u, 7u, 8u, 17u, 64u, 65u, 130u}) {
        BitVector v = BitVector::ones(width);
        std::string hex = service::bitsToHex(v);
        EXPECT_EQ(hex.size(), (width + 3) / 4);
        BitVector back;
        ASSERT_TRUE(service::hexToBits(hex, width, &back)) << width;
        EXPECT_EQ(back, v) << width;

        std::string token = service::formatValue(v);
        BitVector parsed;
        ASSERT_TRUE(service::parseValue(token, &parsed)) << token;
        EXPECT_EQ(parsed, v) << token;
    }
    BitVector out;
    EXPECT_FALSE(service::hexToBits("f", 3, &out));  // 7 > 3 bits
    EXPECT_FALSE(service::hexToBits("ff", 4, &out)); // digit count
    EXPECT_FALSE(service::hexToBits("g", 4, &out));  // not hex
    EXPECT_TRUE(service::hexToBits("7", 3, &out));
    EXPECT_EQ(out.toUint64(), 7u);
}

TEST(ServiceProtocol, SaveDirConfinesTenantPaths)
{
    fs::path dir =
        fs::temp_directory_path() / "manticore_service_savedir_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    ProtoFixture fx(dir.string());
    std::string error;
    service::SessionId id = fx.client.newSession(
        "ctr32", "netlist.compiled", 1, 1u << 20, &error);
    ASSERT_NE(id, 0u) << error;
    ASSERT_TRUE(fx.client.run(id, 100, &error)) << error;
    ASSERT_TRUE(fx.client.wait(id));
    std::string sid = std::to_string(id);

    // Directory components cannot steer the daemon's write outside
    // the configured directory.
    for (const char *evil : {"../evil.mtsnap", "/tmp/evil.mtsnap",
                             "a/b.mtsnap", "..", "."}) {
        service::Client::Reply r =
            fx.client.request("save " + sid + " " + evil);
        EXPECT_FALSE(r.ok) << evil;
        EXPECT_NE(r.detail.find("plain filenames"), std::string::npos)
            << evil << " -> " << r.detail;
    }

    service::Client::Reply r =
        fx.client.request("save " + sid + " good.mtsnap");
    ASSERT_TRUE(r.ok) << r.detail;
    fs::path file = dir / "good.mtsnap";
    ASSERT_TRUE(fs::exists(file)) << file;
    EXPECT_EQ(engine::readSnapshotFile(file.string()).cycle, 100u);
    fs::remove_all(dir);
}

TEST(Service, CheckpointFailureDegradesInsteadOfDying)
{
    fs::path dir =
        fs::temp_directory_path() / "manticore_service_ckpt_degrade";
    fs::remove_all(dir);
    service::SchedulerOptions o = smallQuantum(128, 1);
    o.checkpointEveryCycles = 512;
    o.checkpointDir = dir.string();
    service::Scheduler sched(o); // creates the directory...
    fs::remove_all(dir);         // ...which then vanishes at runtime
    std::string error;
    auto h = service::SessionHandle::create(
        sched, "netlist.compiled", ctr32(1u << 20), {}, &error);
    ASSERT_TRUE(h.valid()) << error;
    ASSERT_TRUE(h.submitRun(3000, &error)) << error;
    ASSERT_TRUE(h.wait());
    service::PollResult p = h.poll();
    // The run completed despite every checkpoint write failing, and
    // the failure is visible rather than fatal.
    EXPECT_EQ(p.cycle, 3000u);
    EXPECT_NE(p.error.find("checkpoint"), std::string::npos) << p.error;
    // The scheduler still takes new work afterwards.
    ASSERT_TRUE(h.submitRun(100, &error)) << error;
    ASSERT_TRUE(h.wait());
    EXPECT_EQ(h.poll().cycle, 3100u);
}
