/**
 * @file
 * Property-based end-to-end differential testing (DESIGN.md §4):
 * generate random closed netlists exercising every word-level
 * operator, compile them, and check that the reference netlist
 * evaluator, the functional ISA interpreter, and the cycle-level
 * machine agree on every RTL register value after every cycle.
 * This is the test that guards the whole lowering / partitioning /
 * CFU / scheduling / register-allocation stack.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "isa/interpreter.hh"
#include "machine/machine.hh"
#include "netlist/builder.hh"
#include "netlist/evaluator.hh"
#include "support/rng.hh"

using namespace manticore;
using netlist::CircuitBuilder;
using netlist::Netlist;
using netlist::RegHandle;
using netlist::Signal;

namespace {

/** Build a random closed netlist: a soup of registers fed by random
 *  combinational expressions over one another (plus optionally a
 *  memory), with widths from 1 to 44 bits. */
Netlist
randomNetlist(uint64_t seed, bool with_memory)
{
    Rng rng(seed);
    CircuitBuilder b("fuzz_" + std::to_string(seed));

    unsigned num_regs = 3 + rng.below(6);
    std::vector<RegHandle> regs;
    std::vector<Signal> pool;
    for (unsigned r = 0; r < num_regs; ++r) {
        unsigned width = 1 + rng.below(44);
        BitVector init(width);
        for (unsigned i = 0; i < width; ++i)
            if (rng.chance(0.5))
                init.setBit(i, true);
        regs.push_back(b.reg("fz" + std::to_string(r), init));
        pool.push_back(regs.back().read());
    }

    auto pick = [&]() { return pool[rng.below(pool.size())]; };
    auto pick_width = [&](unsigned width) -> Signal {
        // Coerce a random pool value to the requested width.
        Signal s = pick();
        if (s.width() == width)
            return s;
        if (s.width() > width)
            return s.slice(0, width);
        return rng.chance(0.5) ? s.zext(width) : s.sext(width);
    };

    netlist::MemHandle mem;
    if (with_memory)
        mem = b.memory("fzmem", 12, 16);

    unsigned num_ops = 24 + rng.below(40);
    for (unsigned i = 0; i < num_ops; ++i) {
        Signal a = pick();
        unsigned w = a.width();
        Signal out;
        switch (rng.below(with_memory ? 16u : 15u)) {
          case 0: out = a + pick_width(w); break;
          case 1: out = a - pick_width(w); break;
          case 2: out = a * pick_width(w); break;
          case 3: out = a & pick_width(w); break;
          case 4: out = a | pick_width(w); break;
          case 5: out = a ^ ~pick_width(w); break;
          case 6: out = (a == pick_width(w)).zext(8); break;
          case 7: out = (a < pick_width(w)).zext(8); break;
          case 8:
            out = b.mux(pick_width(1), a, pick_width(w));
            break;
          case 9: {
            unsigned lo = rng.below(w);
            unsigned len = 1 + rng.below(w - lo);
            out = a.slice(lo, len);
            break;
          }
          case 10: out = b.cat(a, pick()); break;
          case 11:
            out = rng.chance(0.5)
                      ? a.shl(static_cast<unsigned>(rng.below(w + 2)))
                      : a.lshr(static_cast<unsigned>(rng.below(w + 2)));
            break;
          case 12:
            // Dynamic shifts with a runtime amount.
            out = rng.chance(0.5) ? a.shl(pick_width(6))
                                  : a.lshr(pick_width(6));
            break;
          case 13:
            out = rng.chance(0.5) ? a.reduceXor().zext(4)
                                  : a.reduceAnd().zext(4);
            break;
          case 14:
            out = b.lit(16, rng.next() & 0xffff) + pick_width(16);
            break;
          case 15: {
            Signal addr = pick_width(4);
            out = mem.read(addr);
            mem.write(pick_width(4), pick_width(12), pick_width(1));
            break;
          }
        }
        if (out.width() > 48)
            out = out.slice(0, 48);
        pool.push_back(out);
    }

    // Wire each register's next value from the pool.
    for (unsigned r = 0; r < num_regs; ++r) {
        Signal v = pick_width(regs[r].read().width());
        b.next(regs[r], v);
    }
    // Give the program a privileged process too.
    b.finish(b.lit(1, 0));
    return b.build();
}

class FuzzE2E : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(FuzzE2E, EnginesAgreeOnAllRegistersEveryCycle)
{
    uint64_t seed = 0x5eed0000 + GetParam();
    bool with_memory = GetParam() % 3 == 0;
    Netlist nl = randomNetlist(seed, with_memory);

    compiler::CompileOptions opts;
    opts.config.gridX = 1 + GetParam() % 4;
    opts.config.gridY = 1 + (GetParam() / 2) % 3;
    opts.enableCustomFunctions = GetParam() % 2 == 0;
    opts.mergeAlgo = GetParam() % 5 == 0 ? compiler::MergeAlgo::Lpt
                                         : compiler::MergeAlgo::Balanced;
    compiler::CompileResult result = compiler::compile(nl, opts);

    netlist::Evaluator eval(nl);
    isa::Interpreter interp(result.program, opts.config);
    machine::Machine mach(result.program, opts.config);

    constexpr uint64_t kCycles = 24;
    for (uint64_t cycle = 0; cycle < kCycles; ++cycle) {
        eval.step();
        interp.stepVcycle();
        mach.runVcycle();
        for (size_t r = 0; r < nl.numRegisters(); ++r) {
            const BitVector &want = eval.regValue(static_cast<uint32_t>(r));
            const auto &homes = result.regChunkHome[r];
            for (size_t c = 0; c < homes.size(); ++c) {
                unsigned len =
                    std::min(16u, want.width() - 16 * unsigned(c));
                uint16_t expect = static_cast<uint16_t>(
                    want.slice(16 * unsigned(c), len).toUint64());
                EXPECT_EQ(interp.regValue(homes[c].process, homes[c].reg),
                          expect)
                    << "interpreter mismatch: seed " << seed << " reg "
                    << nl.reg(static_cast<uint32_t>(r)).name << " chunk "
                    << c << " cycle " << cycle;
                EXPECT_EQ(mach.regValue(homes[c].process, homes[c].reg),
                          expect)
                    << "machine mismatch: seed " << seed << " reg "
                    << nl.reg(static_cast<uint32_t>(r)).name << " chunk "
                    << c << " cycle " << cycle;
            }
        }
        if (::testing::Test::HasFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzE2E, ::testing::Range(0, 40));
