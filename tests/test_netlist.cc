/**
 * @file
 * Netlist IR, CircuitBuilder, and reference evaluator unit tests:
 * operator semantics, register/memory commit ordering (reads see old
 * values), side-effect semantics, display formatting, and structural
 * validation.
 */

#include <gtest/gtest.h>

#include "netlist/builder.hh"
#include "netlist/evaluator.hh"

using namespace manticore;
using netlist::CircuitBuilder;
using netlist::Evaluator;
using netlist::Netlist;
using netlist::Signal;
using netlist::SimStatus;

TEST(Netlist, CounterCounts)
{
    CircuitBuilder b("counter");
    auto c = b.reg("c", 8);
    b.next(c, c.read() + b.lit(8, 1));
    Netlist nl = b.build();
    Evaluator eval(nl);
    eval.run(10);
    EXPECT_EQ(eval.regValue("c").toUint64(), 10u);
}

TEST(Netlist, RegisterInitValueRespected)
{
    CircuitBuilder b("init");
    auto c = b.reg("c", 8, 42);
    b.next(c, c.read());
    Evaluator eval(b.build());
    eval.run(3);
    EXPECT_EQ(eval.regValue("c").toUint64(), 42u);
}

TEST(Netlist, MemoryReadsSeeOldValueWithinCycle)
{
    // mem[0] starts at 7; in the same cycle we read addr 0 and write
    // addr 0.  RTL semantics: the read sees 7, the write lands after.
    CircuitBuilder b("rdwr");
    std::vector<BitVector> init(4, BitVector(16, 7));
    auto mem = b.memory("m", 16, 4, init);
    auto seen = b.reg("seen", 16);
    Signal zero = b.lit(16, 0);
    b.next(seen, mem.read(zero));
    mem.write(zero, b.lit(16, 99), b.lit(1, 1));
    Evaluator eval(b.build());
    eval.step();
    EXPECT_EQ(eval.regValue("seen").toUint64(), 7u);  // old value
    EXPECT_EQ(eval.memValue(0, 0).toUint64(), 99u);   // committed
    eval.step();
    EXPECT_EQ(eval.regValue("seen").toUint64(), 99u); // new value
}

TEST(Netlist, MemoryWriteEnableGates)
{
    CircuitBuilder b("gated");
    auto mem = b.memory("m", 8, 4);
    auto tick = b.reg("tick", 1);
    b.next(tick, ~tick.read());
    mem.write(b.lit(8, 1).trunc(2), b.lit(8, 0x55), tick.read());
    auto probe = b.reg("probe", 8);
    b.next(probe, mem.read(b.lit(2, 1)));
    Evaluator eval(b.build());
    eval.step(); // tick=0: no write
    EXPECT_EQ(eval.memValue(0, 1).toUint64(), 0u);
    eval.step(); // tick=1: write fires
    EXPECT_EQ(eval.memValue(0, 1).toUint64(), 0x55u);
}

TEST(Netlist, MuxSelectsAndCompareWorks)
{
    CircuitBuilder b("mux");
    auto c = b.reg("c", 4);
    b.next(c, c.read() + b.lit(4, 1));
    auto out = b.reg("out", 8);
    Signal small = c.read() < b.lit(4, 3);
    b.next(out, b.mux(small, b.lit(8, 1), b.lit(8, 2)));
    Evaluator eval(b.build());
    eval.step();
    EXPECT_EQ(eval.regValue("out").toUint64(), 1u); // c was 0
    eval.run(4);
    EXPECT_EQ(eval.regValue("out").toUint64(), 2u); // c >= 3
}

TEST(Netlist, AssertFailureStopsWithMessage)
{
    CircuitBuilder b("bad");
    auto c = b.reg("c", 8);
    b.next(c, c.read() + b.lit(8, 1));
    b.assertAlways(c.read() == b.lit(8, 3), b.lit(1, 0),
                   "c reached three");
    Evaluator eval(b.build());
    auto status = eval.run(100);
    EXPECT_EQ(status, SimStatus::AssertFailed);
    EXPECT_NE(eval.failureMessage().find("c reached three"),
              std::string::npos);
    EXPECT_EQ(eval.cycle(), 3u); // failed before committing cycle 3
}

TEST(Netlist, FinishStopsAfterCommit)
{
    CircuitBuilder b("fin");
    auto c = b.reg("c", 8);
    b.next(c, c.read() + b.lit(8, 1));
    b.finish(c.read() == b.lit(8, 5));
    Evaluator eval(b.build());
    EXPECT_EQ(eval.run(100), SimStatus::Finished);
    EXPECT_EQ(eval.cycle(), 6u);
    EXPECT_EQ(eval.regValue("c").toUint64(), 6u); // commit happened
}

TEST(Netlist, DisplayFormatting)
{
    std::vector<BitVector> args = {BitVector(16, 42), BitVector(8, 7)};
    EXPECT_EQ(Evaluator::formatDisplay("a=%d b=%d!", args),
              "a=42 b=7!");
    EXPECT_EQ(Evaluator::formatDisplay("100%% done", {}), "100% done");
    EXPECT_EQ(Evaluator::formatDisplay("x=%x", {BitVector(8, 0xab)}),
              "x=8'hab");
}

TEST(Netlist, InputsDriveValues)
{
    CircuitBuilder b("in");
    Signal in = b.input("din", 8);
    auto out = b.reg("out", 8);
    b.next(out, in + b.lit(8, 1));
    Evaluator eval(b.build());
    eval.setInput("din", BitVector(8, 10));
    eval.step();
    EXPECT_EQ(eval.regValue("out").toUint64(), 11u);
    eval.setInput("din", BitVector(8, 20));
    eval.step();
    EXPECT_EQ(eval.regValue("out").toUint64(), 21u);
}

TEST(Netlist, WideSignalsEvaluate)
{
    CircuitBuilder b("wide");
    auto acc = b.reg("acc", 100);
    BitVector big(100, 1); // 2^64 + 1 as a 100-bit literal
    big.setBit(64, true);
    b.next(acc, acc.read() + b.lit(big));
    Evaluator eval(b.build());
    eval.run(4);
    // 4 * (2^64 + 1)
    BitVector expect(100, 4);
    expect.setBit(66, true);
    EXPECT_EQ(eval.regValue("acc"), expect);
}

TEST(Netlist, ToStringDumpIsStable)
{
    CircuitBuilder b("dump");
    auto c = b.reg("c", 4);
    b.next(c, c.read() + b.lit(4, 1));
    Netlist nl = b.build();
    std::string dump = nl.toString();
    EXPECT_NE(dump.find("netlist dump"), std::string::npos);
    EXPECT_NE(dump.find("reg r0 \"c\""), std::string::npos);
    EXPECT_NE(dump.find("add"), std::string::npos);
}

TEST(Netlist, TopologicalOrderIsConstructionOrder)
{
    CircuitBuilder b("topo");
    auto c = b.reg("c", 4);
    Signal s = c.read() + b.lit(4, 1);
    b.next(c, s);
    Netlist nl = b.build();
    auto order = nl.topologicalOrder();
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}
