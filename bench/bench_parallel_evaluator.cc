/**
 * @file
 * Partition-parallel vs serial compiled evaluation on the Fig. 6/9
 * benchmark set (large builds): the netlist analogue of the paper's
 * §6.1 claim that RTL simulation scales when the design is split into
 * balanced processes communicating only at end-of-Vcycle barriers.
 *
 * For every design the harness measures the serial CompiledEvaluator
 * rate, then sweeps the ParallelCompiledEvaluator over thread counts
 * and both merge strategies (communication-aware Balanced vs LPT,
 * Fig. 9 / Table 4).  Alongside the measured rate it reports the
 * partition-balance bound totalCost/maxCost — the speedup the
 * partition would allow on enough otherwise-idle cores — so the
 * partitioning quality is visible even on hosts with few hardware
 * threads (cf. the Fig. 5 limit study's single-thread note).  Rows
 * land in BENCH_parallel_evaluator.json.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hh"
#include "netlist/compiled_evaluator.hh"
#include "netlist/parallel_evaluator.hh"

using namespace manticore;

namespace {

double
measure(netlist::EvaluatorBase &eval, uint64_t horizon, uint64_t chunk)
{
    eval.onDisplay = nullptr;
    return bench::measureRateKhz(
        [&](uint64_t n) {
            return eval.run(n) == netlist::SimStatus::Ok;
        },
        horizon - 8, 0.2, chunk);
}

} // namespace

int
main()
{
    bench::printEnvironment(
        "Partition-parallel vs serial compiled evaluation "
        "(Fig. 6/9 designs, large builds, two-barrier Vcycle)");

    const std::vector<unsigned> kThreads = {1, 2, 4, 8};

    std::printf("%8s %5s | %10s |", "bench", "algo", "serial kHz");
    for (unsigned t : kThreads)
        std::printf("  %3ut kHz  spdup", t);
    std::printf(" | %5s %6s %6s\n", "procs", "sends", "bound");

    FILE *json = std::fopen("BENCH_parallel_evaluator.json", "w");
    if (json)
        std::fprintf(json,
                     "{\n  \"experiment\": \"parallel_evaluator\",\n"
                     "  \"hardware_threads\": %u,\n  \"rows\": [\n",
                     std::thread::hardware_concurrency());

    std::vector<double> best_speedups, bounds;
    bool first = true;
    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);

        netlist::CompiledEvaluator serial(nl);
        double serial_khz = measure(serial, horizon, 2048);

        double best = 0.0;
        for (MergeAlgo algo : {MergeAlgo::Balanced, MergeAlgo::Lpt}) {
            std::printf("%8s %5s | %10.1f |", bm.name.c_str(),
                        mergeAlgoName(algo), serial_khz);
            netlist::NetlistPartitionStats stats;
            for (unsigned t : kThreads) {
                netlist::ParallelCompiledEvaluator par(
                    nl, {t, algo});
                // Small chunks: on oversubscribed hosts a parallel
                // cycle can cost scheduler quanta, and the budget
                // check only runs between chunks.
                double khz = measure(par, horizon, 256);
                double speedup =
                    serial_khz > 0 ? khz / serial_khz : 0.0;
                stats = par.partitionStats();
                std::printf("  %7.1f  %5.2fx", khz, speedup);
                best = std::max(best, speedup);
                if (json) {
                    std::fprintf(
                        json,
                        "%s    {\"design\": \"%s\", \"algo\": \"%s\", "
                        "\"threads\": %u, \"processes\": %zu, "
                        "\"serial_khz\": %.2f, \"parallel_khz\": %.2f, "
                        "\"speedup\": %.3f, \"sends\": %zu, "
                        "\"balance_bound\": %.3f}",
                        first ? "" : ",\n", bm.name.c_str(),
                        mergeAlgoName(algo), t, par.numProcesses(),
                        serial_khz, khz, speedup, stats.estimatedSends,
                        stats.estimatedMaxCost
                            ? static_cast<double>(stats.totalCost) /
                                  static_cast<double>(
                                      stats.estimatedMaxCost)
                            : 1.0);
                    first = false;
                }
            }
            double bound =
                stats.estimatedMaxCost
                    ? static_cast<double>(stats.totalCost) /
                          static_cast<double>(stats.estimatedMaxCost)
                    : 1.0;
            if (algo == MergeAlgo::Balanced)
                bounds.push_back(bound);
            std::printf(" | %5zu %6zu %5.2fx\n", stats.mergedProcesses,
                        stats.estimatedSends, bound);
        }
        best_speedups.push_back(best);
    }

    double gm_speedup = bench::geomean(best_speedups);
    double gm_bound = bench::geomean(bounds);
    std::printf("\ngeomean best measured speedup: %.2fx   "
                "geomean balance bound (B, 8 procs max): %.2fx\n",
                gm_speedup, gm_bound);
    std::printf(
        "note: on a single-hardware-thread host the measured columns "
        "show the\ntwo-barrier synchronisation penalty directly "
        "(speedup <= 1, as in Fig. 5);\nthe balance bound is what the "
        "partition supports once cores exist.\n");
    if (json) {
        std::fprintf(json,
                     "\n  ],\n  \"geomean_best_speedup\": %.3f,\n"
                     "  \"geomean_balance_bound\": %.3f\n}\n",
                     gm_speedup, gm_bound);
        std::fclose(json);
        std::printf("wrote BENCH_parallel_evaluator.json\n");
    }
    return 0;
}
