/**
 * @file
 * Batched step(n) vs a step(1) loop through the unified
 * engine::Engine interface, on the engines with native batch modes:
 *
 *  - netlist.compiled: one devirtualised run loop per batch,
 *  - netlist.parallel: the whole batch is one worker-pool command —
 *    one generation signal per cycle instead of two plus counter
 *    resets, and workers roll from commit straight into the next
 *    compute,
 *  - isa.tape: the whole batch executes inside one dispatch, hot
 *    pointers hoisted out of the per-Vcycle loop.
 *
 * Both variants drive the same Engine API, so the measured delta is
 * exactly what the batch contract buys.  Rows land in
 * BENCH_engine_batch.json.  `--engine <name>` restricts the run to
 * one registry engine.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hh"
#include "compiler/compiler.hh"
#include "engine/registry.hh"
#include "netlist/builder.hh"

using namespace manticore;

namespace {

/** Best of `reps` measurements, each on a FRESH engine from `make`
 *  so no run can trip the design's self-check horizon. */
double
measure(const std::function<std::unique_ptr<engine::Engine>()> &make,
        uint64_t horizon, bool batched, int reps = 3)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto eng = make();
        double khz = bench::measureRateKhz(
            [&](uint64_t n) {
                if (batched)
                    return eng->step(n).status ==
                           engine::Status::Running;
                for (uint64_t i = 0; i < n; ++i)
                    if (eng->step(1).status !=
                        engine::Status::Running)
                        return false;
                return true;
            },
            horizon, 0.2, 2048);
        if (khz > best)
            best = khz;
    }
    return best;
}

struct DesignSpec
{
    const char *name;
    std::function<netlist::Netlist(uint64_t)> build;
    unsigned grid;     ///< for the ISA-level compile (§7.7 micros: 1x1)
    uint64_t horizon;
};

/** The smallest closed design: one 32-bit counter and a $finish —
 *  the lower bound on per-cycle work, i.e. the upper bound on the
 *  per-call overhead fraction that batching removes. */
netlist::Netlist
buildCounterMicro(uint64_t check_cycles)
{
    netlist::CircuitBuilder b("ctr32");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() ==
             b.lit(32, static_cast<uint64_t>(check_cycles)));
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> batchable = {
        "netlist.compiled", "netlist.parallel", "netlist.aot",
        "isa.tape"};
    const std::string only = bench::engineFlag(argc, argv, "");
    if (!only.empty() &&
        std::find(batchable.begin(), batchable.end(), only) ==
            batchable.end())
        MANTICORE_FATAL("--engine ", only, " has no native batch mode; "
                        "this bench covers: ",
                        formatNameList(batchable));

    // The §7.7 micros bound the per-cycle work from below — that is
    // where the per-call overhead the batch contract removes is the
    // largest fraction — and three Fig. 6 designs bound it from
    // above.
    const std::vector<DesignSpec> specs = {
        {"ctr32", buildCounterMicro, 1, 8'000'000},
        {"fifo1k",
         [](uint64_t h) { return designs::buildFifoMicro(1, h); }, 1,
         4'000'000},
        {"ram64k",
         [](uint64_t h) { return designs::buildRamMicro(64, h); }, 1,
         4'000'000},
        {"mm", designs::buildMm, 6, bench::measureHorizon("mm")},
        {"jpeg", designs::buildJpeg, 6, bench::measureHorizon("jpeg")},
        {"mc", designs::buildMc, 6, bench::measureHorizon("mc")},
    };

    bench::printEnvironment(
        "Batched step(n) vs step(1) loop through engine::Engine "
        "(best of 3; 6x6 grid for the ISA-level engines, 1x1 for the "
        "§7.7 micros)");
    std::printf("%8s  %18s  %12s  %12s  %9s\n", "design", "engine",
                "step(1) kHz", "step(n) kHz", "speedup");

    FILE *json = std::fopen("BENCH_engine_batch.json", "w");
    if (json)
        std::fprintf(json, "{\n  \"experiment\": \"engine_batch\",\n"
                           "  \"rows\": [\n");

    std::vector<double> speedups;
    bool first = true;
    {
        for (const DesignSpec &spec : specs) {
            uint64_t horizon = spec.horizon;
            netlist::Netlist nl = spec.build(horizon * 8);

            // One compile per design, shared by both isa.tape
            // instances through the program-level registry overload.
            compiler::CompileOptions copts;
            copts.config.gridX = copts.config.gridY = spec.grid;
            compiler::CompileResult cr = compiler::compile(nl, copts);

            for (const std::string &name : batchable) {
                if (!only.empty() && name != only)
                    continue;
                auto make = [&]() {
                    if (name == "isa.tape")
                        return engine::create(name, cr.program,
                                              copts.config);
                    return engine::create(name, nl);
                };
                double step1_khz = measure(make, horizon, false);
                double batched_khz = measure(make, horizon, true);

                double speedup =
                    step1_khz > 0 ? batched_khz / step1_khz : 0.0;
                speedups.push_back(speedup);
                std::printf("%8s  %18s  %12.1f  %12.1f  %8.2fx\n",
                            spec.name, name.c_str(), step1_khz,
                            batched_khz, speedup);
                if (json) {
                    std::fprintf(json,
                                 "%s    {\"design\": \"%s\", "
                                 "\"engine\": \"%s\", "
                                 "\"step1_khz\": %.2f, "
                                 "\"batched_khz\": %.2f, "
                                 "\"speedup\": %.2f}",
                                 first ? "" : ",\n", spec.name,
                                 name.c_str(), step1_khz, batched_khz,
                                 speedup);
                    first = false;
                }
            }
        }
    }

    double gm = bench::geomean(speedups);
    std::printf("\ngeomean batched-step speedup: %.2fx\n", gm);
    if (json) {
        std::fprintf(json, "\n  ],\n  \"geomean_speedup\": %.2f\n}\n",
                     gm);
        std::fclose(json);
        std::printf("wrote BENCH_engine_batch.json\n");
    }
    return 0;
}
