/**
 * @file
 * Ablation study of the microarchitectural constants DESIGN.md §5
 * fixes (not a paper table, but the design-choice analysis the paper's
 * §5 narrative implies): how the Vcycle length responds to
 *  - the pipeline's operand-to-result latency (the price of the
 *    14-stage pipeline that buys the 475 MHz clock), and
 *  - the NoC hop latency (the price of the pipelined torus).
 *
 * Together with Table 1 (frequency vs. grid) this quantifies the
 * trade the paper's hardware makes: deeper pipelines raise the clock
 * but lengthen every dependence chain in the static schedule.
 */

#include "bench/common.hh"
#include "compiler/compiler.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Ablation: VCPL sensitivity to pipeline and NoC latencies "
        "(8x8 grid)");

    const unsigned latencies[] = {1, 4, 8, 11, 16};
    std::printf("VCPL vs pipeline operand-to-result latency "
                "(hardware default 11):\n%8s", "bench");
    for (unsigned lat : latencies)
        std::printf("   L=%-4u", lat);
    std::printf("\n");
    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        netlist::Netlist nl = bm.build(1u << 20);
        std::printf("%8s", bm.name.c_str());
        for (unsigned lat : latencies) {
            compiler::CompileOptions opts;
            opts.config.gridX = opts.config.gridY = 8;
            opts.config.pipelineLatency = lat;
            compiler::CompileResult r = compiler::compile(nl, opts);
            std::printf("%9u", r.program.vcpl);
        }
        std::printf("\n");
    }

    const unsigned hops[] = {1, 2, 4};
    std::printf("\nVCPL vs NoC hop latency (hardware default 1):\n%8s",
                "bench");
    for (unsigned h : hops)
        std::printf("   H=%-4u", h);
    std::printf("\n");
    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        netlist::Netlist nl = bm.build(1u << 20);
        std::printf("%8s", bm.name.c_str());
        for (unsigned h : hops) {
            compiler::CompileOptions opts;
            opts.config.gridX = opts.config.gridY = 8;
            opts.config.hopLatency = h;
            compiler::CompileResult r = compiler::compile(nl, opts);
            std::printf("%9u", r.program.vcpl);
        }
        std::printf("\n");
    }

    std::printf("\nReading: serial designs (jpeg) scale their VCPL "
                "almost linearly with the\npipeline latency — every "
                "dependence edge pays it — while wide designs hide\n"
                "it behind parallel issue.  Hop latency only matters "
                "for send-heavy designs.\nA shallower pipeline would "
                "cut VCPL but also the clock (Table 1): the paper's\n"
                "14-stage/475 MHz point trades schedule length for "
                "frequency.\n");
    return 0;
}
