/**
 * @file
 * Checkpoint latency: save()/restore() wall time vs architectural
 * state size, on the netlist engines.  The canonical snapshot format
 * serializes the register file + memory images per lane, so the
 * expectation is O(state bytes) at memcpy-like throughput — and warm
 * re-saves into one Snapshot must be allocation-free (Snapshot::reset
 * keeps section capacity), which the harness verifies by checking the
 * section buffer address is stable across warm rounds.
 *
 * Rows land in BENCH_snapshot.json.  `--engine <name>` restricts to
 * one engine.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "engine/registry.hh"
#include "engine/snapshot.hh"
#include "netlist/builder.hh"

using namespace manticore;

namespace {

/** Self-driving design whose state is dominated by one 64-bit-wide
 *  RAM of `depth` words (power of two), continuously written so the
 *  snapshot cannot cheat with untouched pages. */
netlist::Netlist
ramDesign(unsigned depth)
{
    unsigned abits = 0;
    while ((1u << abits) < depth)
        ++abits;
    netlist::CircuitBuilder b("snapram" + std::to_string(depth));
    auto cyc = b.reg("cyc", 32);
    b.next(cyc, cyc.read() + b.lit(32, 1));
    auto m = b.memory("m", 64, depth);
    auto addr = cyc.read().slice(0, abits);
    m.write(addr, m.read(addr) + cyc.read().zext(64), b.lit(1, 1));
    return b.build();
}

double
toUs(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

/** Average wall time of `op` in microseconds, repeated until ~20 ms
 *  of samples accumulate (min 8 rounds). */
template <typename Op>
double
avgUs(Op &&op)
{
    using clock = std::chrono::steady_clock;
    unsigned rounds = 0;
    clock::duration total{0};
    while (rounds < 8 || toUs(total) < 20'000.0) {
        auto t0 = clock::now();
        op();
        total += clock::now() - t0;
        ++rounds;
    }
    return toUs(total) / rounds;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printEnvironment("snapshot: save/restore latency vs "
                            "architectural state size");
    const std::string only = bench::engineFlag(argc, argv, "");

    const std::vector<unsigned> depths = {256, 4096, 65536, 262144};
    const std::vector<std::string> engines = {
        "netlist.reference", "netlist.compiled", "netlist.parallel"};

    FILE *json = std::fopen("BENCH_snapshot.json", "w");
    if (json)
        std::fprintf(json, "{\n  \"experiment\": \"snapshot\",\n"
                           "  \"rows\": [");
    std::printf("%-18s %10s %12s %12s %12s %10s %6s\n", "engine",
                "state_KiB", "save_cold_us", "save_warm_us",
                "restore_us", "save_GB/s", "warm0");
    bool first = true;
    for (unsigned depth : depths) {
        netlist::Netlist nl = ramDesign(depth);
        for (const std::string &name : engines) {
            if (!only.empty() && only != name)
                continue;
            auto eng = engine::create(name, nl);
            eng->step(64); // dirty the RAM

            engine::Snapshot snap;
            auto t0 = std::chrono::steady_clock::now();
            eng->save(snap);
            const double cold_us =
                toUs(std::chrono::steady_clock::now() - t0);
            const size_t bytes = snap.sections[0].size();

            // Warm saves must reuse the section buffer: address
            // stability across rounds is the no-allocation witness.
            const uint8_t *storage = snap.sections[0].data();
            const double warm_us = avgUs([&] { eng->save(snap); });
            const bool warm_alloc_free =
                snap.sections[0].data() == storage;
            const double restore_us =
                avgUs([&] { eng->restore(snap); });

            const double save_gbps =
                bytes / warm_us / 1e3; // B/us = MB/s; /1e3 = GB/s
            std::printf("%-18s %10.1f %12.2f %12.2f %12.2f %10.2f "
                        "%6s\n",
                        name.c_str(), bytes / 1024.0, cold_us,
                        warm_us, restore_us, save_gbps,
                        warm_alloc_free ? "yes" : "NO");
            if (json) {
                std::fprintf(
                    json,
                    "%s\n    {\"engine\": \"%s\", \"ram_depth\": %u, "
                    "\"state_bytes\": %zu, \"save_cold_us\": %.3f, "
                    "\"save_warm_us\": %.3f, \"restore_us\": %.3f, "
                    "\"save_gb_per_s\": %.3f, "
                    "\"warm_save_alloc_free\": %s}",
                    first ? "" : ",", name.c_str(), depth, bytes,
                    cold_us, warm_us, restore_us, save_gbps,
                    warm_alloc_free ? "true" : "false");
                first = false;
            }
        }
    }
    if (json) {
        std::fprintf(json, "\n  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_snapshot.json\n");
    }
    return 0;
}
