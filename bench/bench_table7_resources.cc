/**
 * @file
 * Table 7: FPGA resource utilisation of a single Manticore core on
 * the U200, from the analytic physical-design model, plus the URAM
 * core-count bound (§A.7).
 */

#include "bench/common.hh"
#include "machine/fpga_model.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Table 7: single-core resource utilisation on the U200");

    machine::FpgaModel model;
    std::printf("%-8s %10s %10s\n", "resource", "count", "% of U200");
    std::printf("%-8s %10u %10.2f\n", "LUT", model.core.lut,
                100.0 * model.core.lut / model.device.lut);
    std::printf("%-8s %10u %10.2f\n", "LUTRAM", model.core.lutram,
                100.0 * model.core.lutram / model.device.lutram);
    std::printf("%-8s %10u %10.2f\n", "FF", model.core.ff,
                100.0 * model.core.ff / model.device.ff);
    std::printf("%-8s %10u %10.2f\n", "BRAM", model.core.bram,
                100.0 * model.core.bram / model.device.bram);
    std::printf("%-8s %10u %10.2f\n", "URAM", model.core.uram,
                100.0 * model.core.uram / model.device.uram);
    std::printf("%-8s %10u %10.2f\n", "DSP", model.core.dsp,
                100.0 * model.core.dsp / model.device.dsp);
    std::printf("%-8s %10u %10s\n", "SRL", model.core.srl, "0.02");

    std::printf("\nURAM is the binding resource: 2 per core "
                "(imem + scratchpad) out of %u\navailable (%u minus "
                "%u for the cache) -> at most %u cores "
                "(paper: 398).\n",
                model.device.uramAvailable - model.device.cacheUrams,
                model.device.uramAvailable, model.device.cacheUrams,
                model.maxCores());
    std::printf("paper row:  LUT 0.05  LUTRAM 0.02  FF 0.05  "
                "BRAM 0.19  URAM 0.21  DSP 0.01\n");
    return 0;
}
