/**
 * @file
 * AOT-compiled vs interpreted-tape netlist evaluation on the Fig. 6
 * benchmark set (large builds): per design, codegen + host-compile
 * time on a cold cache, startup time on a warm cache (must invoke
 * the compiler zero times), and the steady-state cycles/sec of the
 * dispatch-free cycle function against netlist.compiled.  Rows are
 * appended to BENCH_aot.json.
 *
 * A second section measures cold-start concurrency: the big tapes
 * emit as ≤1024-statement chunk translation units that compile
 * through concurrent compiler processes (EvalOptions::aotJobs), so a
 * cold build with aotJobs=4 should beat aotJobs=1 on mm/rv32r
 * wherever the host has the cores (on a 1-thread host the two
 * columns document the overhead-free degeneration instead).
 *
 * Flags: --cache-dir <dir> selects the object-cache directory
 * (default: the evaluator's own resolution, see netlist/aot.hh);
 * --engine <name> selects the baseline engine (default
 * netlist.compiled).
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/common.hh"
#include "netlist/aot.hh"
#include "netlist/compiled_evaluator.hh"
#include "netlist/evaluator.hh"

using namespace manticore;

namespace {

double
measure(netlist::EvaluatorBase &eval, uint64_t horizon)
{
    eval.onDisplay = nullptr;
    return bench::measureRateKhz(
        [&](uint64_t n) {
            return eval.run(n) == netlist::SimStatus::Ok;
        },
        horizon - 8, 0.2, 2048);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printEnvironment(
        "AOT-compiled cycle function vs interpreted tape "
        "(Fig. 6 designs, large builds)");

    const netlist::AotToolchain &tc = netlist::aotToolchain();
    if (!tc.ok) {
        std::printf("skipped: %s\n", tc.message.c_str());
        return 0;
    }
    std::printf("toolchain: %s\n", tc.compiler.c_str());

    netlist::EvalOptions aot_options;
    aot_options.aotCacheDir = bench::cacheDirFlag(argc, argv);
    std::string baseline =
        bench::engineFlag(argc, argv, "netlist.compiled");
    std::printf("cache dir: %s\nbaseline: %s\n\n",
                netlist::aotResolveCacheDir(aot_options).c_str(),
                baseline.c_str());

    std::printf("%8s  %10s  %10s  %12s  %12s  %9s\n", "bench",
                "cold s", "warm s", "base kHz", "aot kHz", "speedup");

    FILE *json = std::fopen("BENCH_aot.json", "w");
    if (json)
        std::fprintf(json, "{\n  \"experiment\": \"aot\",\n"
                           "  \"rows\": [\n");

    std::vector<double> speedups;
    bool first = true;
    bool warm_clean = true;
    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);

        // Cold startup: codegen + host compile (or whatever the cache
        // already holds); warm startup must be compile-free.
        auto t0 = std::chrono::steady_clock::now();
        netlist::AotEvaluator cold(nl, aot_options);
        double cold_s = secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        netlist::AotEvaluator aot(nl, aot_options);
        double warm_s = secondsSince(t0);
        if (!aot.usingAot() || aot.compilerInvocations() != 0 ||
            !aot.cacheHit())
            warm_clean = false;

        auto base = engine::create(baseline, nl);
        double base_khz = bench::measureRateKhz(
            [&](uint64_t n) {
                return base->step(n).status == engine::Status::Running;
            },
            horizon - 8, 0.2, 2048);
        double aot_khz = measure(aot, horizon);

        double speedup = base_khz > 0 ? aot_khz / base_khz : 0.0;
        speedups.push_back(speedup);
        std::printf("%8s  %10.2f  %10.4f  %12.1f  %12.1f  %8.2fx\n",
                    bm.name.c_str(), cold_s, warm_s, base_khz, aot_khz,
                    speedup);
        if (json) {
            std::fprintf(
                json,
                "%s    {\"design\": \"%s\", \"cold_startup_s\": %.3f, "
                "\"warm_startup_s\": %.4f, "
                "\"warm_compiler_invocations\": %u, "
                "\"baseline_khz\": %.2f, \"aot_khz\": %.2f, "
                "\"speedup\": %.2f}",
                first ? "" : ",\n", bm.name.c_str(), cold_s, warm_s,
                aot.compilerInvocations(), base_khz, aot_khz, speedup);
            first = false;
        }
    }

    double gm = bench::geomean(speedups);
    std::printf("\ngeomean speedup vs %s: %.2fx\n", baseline.c_str(),
                gm);
    std::printf("warm-cache startups compile-free: %s\n",
                warm_clean ? "yes" : "NO");

    // ---- cold-start concurrency (chunked TUs, aotJobs) -------------
    // Throwaway cache subdirectories so every construction is a true
    // cold build; wiped before and after.
    if (json)
        std::fprintf(json, "\n  ],\n  \"cold_start_rows\": [\n");
    std::printf("\ncold-start concurrency (chunk TUs, serial vs "
                "aotJobs=4):\n");
    std::printf("%8s  %9s  %12s  %12s  %9s\n", "bench", "invokes",
                "serial s", "parallel s", "speedup");
    first = true;
    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        if (bm.name != "mm" && bm.name != "rv32r")
            continue;
        netlist::Netlist nl = bm.build(bench::measureHorizon(bm.name));
        double secs[2] = {0.0, 0.0};
        unsigned invocations = 0;
        for (int pass = 0; pass < 2; ++pass) {
            netlist::EvalOptions cold_options = aot_options;
            cold_options.aotJobs = pass == 0 ? 1 : 4;
            cold_options.aotCacheDir =
                netlist::aotResolveCacheDir(aot_options) +
                "/cold-start-bench";
            std::error_code ec;
            std::filesystem::remove_all(cold_options.aotCacheDir, ec);
            auto t0 = std::chrono::steady_clock::now();
            netlist::AotEvaluator cold(nl, cold_options);
            secs[pass] = secondsSince(t0);
            invocations = cold.compilerInvocations();
            std::filesystem::remove_all(cold_options.aotCacheDir, ec);
        }
        double speedup = secs[1] > 0 ? secs[0] / secs[1] : 0.0;
        std::printf("%8s  %9u  %12.2f  %12.2f  %8.2fx\n",
                    bm.name.c_str(), invocations, secs[0], secs[1],
                    speedup);
        if (json) {
            std::fprintf(
                json,
                "%s    {\"design\": \"%s\", "
                "\"compiler_invocations\": %u, "
                "\"serial_cold_s\": %.2f, \"parallel_cold_s\": %.2f, "
                "\"cold_speedup\": %.2f}",
                first ? "" : ",\n", bm.name.c_str(), invocations,
                secs[0], secs[1], speedup);
            first = false;
        }
    }

    if (json) {
        std::fprintf(json,
                     "\n  ],\n  \"baseline\": \"%s\",\n"
                     "  \"warm_cache_compile_free\": %s,\n"
                     "  \"geomean_speedup\": %.2f\n}\n",
                     baseline.c_str(), warm_clean ? "true" : "false",
                     gm);
        std::fclose(json);
        std::printf("wrote BENCH_aot.json\n");
    }
    return 0;
}
