/**
 * @file
 * Reference vs compiled netlist evaluation rate on the Fig. 6
 * benchmark set at the paper's >= 64-core scale (the same large
 * builds Fig. 7 / Table 3 use).  The reference Evaluator allocates a
 * BitVector per node per cycle; the CompiledEvaluator runs the same
 * DAG as a flat tape over a preallocated limb arena.  The measured
 * ratio is the cost of that allocation + indirection, and the row is
 * appended to BENCH_compiled_evaluator.json so the perf trajectory is
 * tracked from PR 1 on.
 */

#include <cstdio>

#include "bench/common.hh"
#include "netlist/compiled_evaluator.hh"
#include "netlist/evaluator.hh"

using namespace manticore;

namespace {

double
measure(netlist::EvaluatorBase &eval, uint64_t horizon, uint64_t chunk)
{
    eval.onDisplay = nullptr;
    return bench::measureRateKhz(
        [&](uint64_t n) {
            return eval.run(n) == netlist::SimStatus::Ok;
        },
        horizon - 8, 0.2, chunk);
}

} // namespace

int
main()
{
    bench::printEnvironment(
        "Compiled tape evaluator vs reference netlist evaluator "
        "(Fig. 6 designs, large builds)");

    std::printf("%8s  %12s  %12s  %9s  %8s  %10s\n", "bench", "ref kHz",
                "tape kHz", "speedup", "tape ops", "arena KiB");

    FILE *json = std::fopen("BENCH_compiled_evaluator.json", "w");
    if (json)
        std::fprintf(json,
                     "{\n  \"experiment\": \"compiled_evaluator\",\n"
                     "  \"rows\": [\n");

    std::vector<double> speedups;
    bool first = true;
    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);

        auto ref =
            netlist::makeEvaluator(nl, netlist::EvalMode::Reference);
        // The reference engine can be slow enough that the default
        // 2048-cycle chunk overshoots the budget; use a smaller one.
        double ref_khz = measure(*ref, horizon, 256);

        netlist::CompiledEvaluator tape(nl);
        double tape_khz = measure(tape, horizon, 2048);

        double speedup = ref_khz > 0 ? tape_khz / ref_khz : 0.0;
        speedups.push_back(speedup);
        std::printf("%8s  %12.1f  %12.1f  %8.2fx  %8zu  %10.1f\n",
                    bm.name.c_str(), ref_khz, tape_khz, speedup,
                    tape.tapeLength(),
                    tape.arenaLimbs() * 8.0 / 1024.0);
        if (json) {
            std::fprintf(json,
                         "%s    {\"design\": \"%s\", "
                         "\"reference_khz\": %.2f, "
                         "\"compiled_khz\": %.2f, "
                         "\"speedup\": %.2f}",
                         first ? "" : ",\n", bm.name.c_str(), ref_khz,
                         tape_khz, speedup);
            first = false;
        }
    }

    double gm = bench::geomean(speedups);
    std::printf("\ngeomean speedup: %.2fx\n", gm);
    if (json) {
        std::fprintf(json,
                     "\n  ],\n  \"geomean_speedup\": %.2f\n}\n", gm);
        std::fclose(json);
        std::printf("wrote BENCH_compiled_evaluator.json\n");
    }
    return 0;
}
