/**
 * @file
 * Fig. 9 + Table 4: communication-aware balanced partitioning (B)
 * against communication-oblivious longest-processing-time-first (L)
 * on a 15x15 grid.  Reports per benchmark: normalised VCPL with the
 * straggler's compute/send/NOP breakdown, cores used, and the total
 * SEND counts with B's percentage reduction.
 */

#include "bench/common.hh"
#include "compiler/compiler.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Fig. 9 / Table 4: partitioning quality — "
        "LPT (L) vs balanced communication-aware (B), 15x15 grid");

    std::printf("%8s | %8s %8s %8s %6s %7s | %8s %8s %8s %6s %7s | %8s\n",
                "bench", "L-vcpl", "L-sends", "L-nop%", "L-cmp%",
                "L-cores", "B-vcpl", "B-sends", "B-nop%", "B-cmp%",
                "B-cores", "send-red%");

    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        netlist::Netlist nl = bm.build(1u << 20);
        struct Res
        {
            unsigned vcpl;
            uint64_t sends;
            double nop_pct, cmp_pct;
            size_t cores;
        };
        auto run = [&](compiler::MergeAlgo algo) {
            compiler::CompileOptions opts;
            opts.config.gridX = opts.config.gridY = 15;
            opts.mergeAlgo = algo;
            compiler::CompileResult r = compiler::compile(nl, opts);
            Res res;
            res.vcpl = r.program.vcpl;
            res.sends = r.schedule.totalSends;
            res.nop_pct = 100.0 * r.schedule.stragglerNop / r.program.vcpl;
            res.cmp_pct =
                100.0 * r.schedule.stragglerCompute / r.program.vcpl;
            res.cores = r.program.processes.size();
            return res;
        };
        Res l = run(compiler::MergeAlgo::Lpt);
        Res b = run(compiler::MergeAlgo::Balanced);
        double reduction =
            l.sends > 0
                ? 100.0 * (static_cast<double>(l.sends) -
                           static_cast<double>(b.sends)) /
                      static_cast<double>(l.sends)
                : 0.0;
        std::printf(
            "%8s | %8.2f %8llu %8.1f %6.1f %7zu | %8.2f %8llu %8.1f "
            "%6.1f %7zu | %8.1f\n",
            bm.name.c_str(), 1.0, static_cast<unsigned long long>(l.sends),
            l.nop_pct, l.cmp_pct, l.cores,
            static_cast<double>(b.vcpl) / l.vcpl,
            static_cast<unsigned long long>(b.sends), b.nop_pct,
            b.cmp_pct, b.cores, reduction);
    }
    std::printf("\npaper (Table 4): B reduces sends by 28-94%%; B "
                "generally beats L while\nusing fewer cores (Fig. 9)."
                "\n");
    return 0;
}
