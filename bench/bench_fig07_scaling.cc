/**
 * @file
 * Fig. 7: Manticore's multicore scaling.  As in the paper, speedups
 * are the compiler's cycle-exact VCPL predictions (the machine is
 * deterministic, so the compiler can count cycles): speedup(n) =
 * VCPL(1 core) / VCPL(n cores) per benchmark, across grids up to
 * 18x18 = 324 cores.
 */

#include "bench/common.hh"
#include "compiler/compiler.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Fig. 7: Manticore multicore scaling "
        "(compiler-predicted VCPL, as in the paper)");

    const unsigned grids[] = {1, 3, 5, 7, 9, 11, 13, 15, 16, 17, 18};

    std::printf("%8s", "bench");
    for (unsigned g : grids)
        std::printf("%7u", g * g);
    std::printf("\n");

    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        netlist::Netlist nl = bm.build(1u << 20);
        std::printf("%8s", bm.name.c_str());
        double base_vcpl = 0.0;
        for (unsigned g : grids) {
            compiler::CompileOptions opts;
            opts.config.gridX = opts.config.gridY = g;
            // Small grids are VCPL predictions only (the paper's
            // single-core baselines cannot boot either).
            opts.enforceImemLimit = false;
            compiler::CompileResult result = compiler::compile(nl, opts);
            double vcpl = result.program.vcpl;
            if (g == 1)
                base_vcpl = vcpl;
            std::printf("%7.1f", base_vcpl / vcpl);
        }
        std::printf("   (1-core VCPL %.0f)\n", base_vcpl);
    }
    std::printf("\npaper: scaling continues to 200-300 cores for "
                "parallel designs (mc, mm),\nplateaus early for "
                "serial ones (jpeg).\n");
    return 0;
}
