/**
 * @file
 * Table 3: the headline comparison.  For each of the nine benchmarks:
 *  - "# instr": work per simulated RTL cycle (baseline ops/cycle, the
 *    analogue of the paper's x86 instructions per cycle);
 *  - baseline serial (S) and multithreaded (MT) rates in kHz,
 *    measured;
 *  - Manticore's rate on a 15x15 grid at 475 MHz: clock / VCPL,
 *    exactly how the deterministic hardware behaves (validated here
 *    by running the compiled binary on the cycle-level machine);
 *  - speedups xS and xMT, with geomeans.
 */

#include <algorithm>

#include "baseline/baseline.hh"
#include "bench/common.hh"
#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "machine/machine.hh"
#include "runtime/host.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Table 3: Manticore (15x15 @ 475 MHz) vs baseline software "
        "simulation");

    unsigned mt_threads =
        std::min(4u, std::max(2u, std::thread::hardware_concurrency()));

    std::printf("%8s %10s %10s %10s %8s %10s %8s %8s\n", "bench",
                "ops/cyc", "S kHz", "MT kHz", "MTxself", "Mant kHz",
                "xS", "xMT");

    std::vector<double> xs, xmt;
    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);

        baseline::CompiledDesign design(nl);
        double ops_per_cycle = static_cast<double>(design.ops().size());

        baseline::SerialSimulator serial(design);
        serial.state().collectDisplays = false;
        double s_khz = bench::measureRateKhz(
            [&](uint64_t chunk) {
                return serial.run(chunk) == baseline::SimStatus::Ok;
            },
            horizon - 8);

        baseline::ThreadedSimulator mt(design, mt_threads);
        mt.state().collectDisplays = false;
        double mt_khz = bench::measureRateKhz(
            [&](uint64_t chunk) {
                return mt.run(chunk) == baseline::SimStatus::Ok;
            },
            horizon - 8);

        compiler::CompileOptions opts;
        opts.config.gridX = opts.config.gridY = 15;
        opts.config.clockKhz = 475'000.0;
        compiler::CompileResult result = compiler::compile(nl, opts);
        double mant_khz = result.simulationRateKhz(475'000.0);

        // Validate the compiled program on the machine for a window.
        {
            netlist::Netlist vnl = bm.build(200);
            compiler::CompileResult vres = compiler::compile(vnl, opts);
            machine::Machine m(vres.program, opts.config);
            runtime::Host host(vres.program, m.globalMemory());
            host.attach(engine::wrap(m));
            if (m.run(220) != isa::RunStatus::Finished) {
                std::printf("!! %s failed machine validation: %s\n",
                            bm.name.c_str(),
                            host.failureMessage().c_str());
                return 1;
            }
        }

        double x_s = s_khz > 0 ? mant_khz / s_khz : 0;
        double x_mt = mt_khz > 0 ? mant_khz / mt_khz : 0;
        xs.push_back(x_s);
        xmt.push_back(x_mt);
        std::printf("%8s %10.0f %10.1f %10.1f %8.2f %10.1f %8.2f %8.2f"
                    "   (VCPL %u, %zu cores)\n",
                    bm.name.c_str(), ops_per_cycle, s_khz, mt_khz,
                    s_khz > 0 ? mt_khz / s_khz : 0, mant_khz, x_s,
                    x_mt, result.program.vcpl,
                    result.program.processes.size());
    }
    std::printf("%8s %10s %10s %10s %8s %10s %8.2f %8.2f\n", "geomean",
                "", "", "", "", "", bench::geomean(xs),
                bench::geomean(xmt));
    std::printf("\npaper (epyc): xS geomean 3.35, xMT geomean 2.07; "
                "Manticore wins 8 of 9\n(all but the serial jpeg).\n");
    return 0;
}
