/**
 * @file
 * Fig. 5 (and the appendix's Fig. 14): the limit study of fine-grained
 * parallel RTL simulation on a general-purpose host.
 *
 * Model 1 (Listing 1): P threads each execute N/P independent
 * unoptimisable instructions per simulated cycle, separated by two
 * barriers (end of computation, end of communication).  Model 2 adds
 * instruction-cache pressure by dispatching the work through a large
 * table of non-inlinable kernels instead of one tight loop (the
 * paper's full unroll).
 *
 * Output: rate (kHz) per (model, granularity, threads), the maximum
 * self-relative speedup table of Fig. 5, and the [min, max] rate table
 * of Fig. 14.
 */

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/common.hh"

namespace {

// The paper's nonOpt(): four independent xor-add chains.
struct Lanes
{
    uint64_t a = 1, b = 2, c = 3, d = 4;
};

inline void
nonOpt(Lanes &l)
{
    l.a ^= l.a + 1;
    l.b ^= l.b + 1;
    l.c ^= l.c + 1;
    l.d ^= l.d + 1;
}

constexpr unsigned kInstrPerNonOpt = 8; // 4 adds + 4 xors

/** Model 2's icache pressure: a big bank of distinct non-inlinable
 *  kernels, each a short burst of nonOpt work. */
#define KERNEL(n) \
    __attribute__((noinline)) void kernel##n(Lanes &l) \
    { \
        nonOpt(l); \
        nonOpt(l); \
        nonOpt(l); \
        nonOpt(l); \
    }
KERNEL(0) KERNEL(1) KERNEL(2) KERNEL(3) KERNEL(4) KERNEL(5)
KERNEL(6) KERNEL(7) KERNEL(8) KERNEL(9) KERNEL(10) KERNEL(11)
KERNEL(12) KERNEL(13) KERNEL(14) KERNEL(15)
#undef KERNEL

using KernelFn = void (*)(Lanes &);
constexpr KernelFn kKernels[16] = {
    kernel0, kernel1, kernel2,  kernel3,  kernel4,  kernel5,
    kernel6, kernel7, kernel8,  kernel9,  kernel10, kernel11,
    kernel12, kernel13, kernel14, kernel15};
constexpr unsigned kInstrPerKernel = 4 * kInstrPerNonOpt;

/** Run the strong-scaling experiment; returns the rate in kHz. */
double
runModel(bool icache_model, uint64_t instr_per_cycle, unsigned threads,
         uint64_t cycles)
{
    std::barrier sync(static_cast<std::ptrdiff_t>(threads));
    std::vector<std::thread> pool;
    auto start = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            Lanes lanes;
            lanes.a += t;
            uint64_t local_instr = instr_per_cycle / threads;
            for (uint64_t c = 0; c < cycles; ++c) {
                if (!icache_model) {
                    // Model 1: tight loop.
                    for (uint64_t i = local_instr; i >= kInstrPerNonOpt;
                         i -= kInstrPerNonOpt)
                        nonOpt(lanes);
                } else {
                    // Model 2: walk the kernel table (poor icache and
                    // branch-target locality, like unrolled RTL code).
                    uint64_t i = local_instr;
                    uint64_t k = c + t;
                    while (i >= kInstrPerKernel) {
                        kKernels[(k++) & 15](lanes);
                        i -= kInstrPerKernel;
                    }
                }
                sync.arrive_and_wait(); // end of computation
                sync.arrive_and_wait(); // end of (zero-cost) comm
            }
            // Keep the work observable.
            std::atomic_signal_fence(std::memory_order_seq_cst);
            volatile uint64_t sink = lanes.a ^ lanes.b ^ lanes.c ^ lanes.d;
            (void)sink;
        });
    }
    for (auto &th : pool)
        th.join();
    double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return static_cast<double>(cycles) / sec / 1000.0;
}

} // namespace

int
main()
{
    manticore::bench::printEnvironment(
        "Fig. 5 / Fig. 14: parallel-simulation limit study "
        "(models 1 and 2)");

    const std::vector<std::pair<const char *, uint64_t>> grains = {
        {"1.7K", 1'700},     {"6.9K", 6'900},   {"27.6K", 27'600},
        {"110.6K", 110'600}, {"442.4K", 442'400},
        {"1.8M", 1'800'000}, {"3.5M", 3'500'000}};
    unsigned max_threads =
        std::min(8u, std::max(1u, std::thread::hardware_concurrency()));

    for (int model = 1; model <= 2; ++model) {
        std::printf("\nmodel %d (%s)\n", model,
                    model == 1 ? "synchronisation cost only"
                               : "plus i-cache pressure");
        std::printf("%10s", "grain\\thr");
        for (unsigned t = 1; t <= max_threads; ++t)
            std::printf("%10u", t);
        std::printf("%10s%10s%10s\n", "max-spdup", "min-kHz", "max-kHz");

        for (const auto &[label, grain] : grains) {
            // Budget: bound both total instructions (coarse grains)
            // and total barrier crossings (fine grains) per cell.
            uint64_t cycles = std::clamp<uint64_t>(
                static_cast<uint64_t>(2.0e8 / grain), 8, 2000);
            std::printf("%10s", label);
            std::vector<double> rates;
            for (unsigned t = 1; t <= max_threads; ++t) {
                double khz = runModel(model == 2, grain, t, cycles);
                rates.push_back(khz);
                std::printf("%10.1f", khz);
            }
            double best = *std::max_element(rates.begin(), rates.end());
            double worst = *std::min_element(rates.begin(), rates.end());
            std::printf("%10.2f%10.1f%10.1f\n", best / rates[0], worst,
                        best);
        }
    }
    std::printf(
        "\nnote: on a single-hardware-thread host the multi-thread "
        "columns show\nthe synchronisation penalty directly (speedup "
        "<= 1); the paper's multi-core\nhosts additionally show the "
        "rise-then-fall the model predicts.\n");
    return 0;
}
