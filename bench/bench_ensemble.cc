/**
 * @file
 * Ensemble scaling: aggregate simulation throughput (cycles/sec·lane
 * — simulated cycles delivered per second summed over the lanes) of
 * the N-lane ensemble engines vs the lane count, on the Fig. 6
 * designs plus the §7.7 micros.
 *
 * The ensemble amortises per-cycle fixed costs over N decoupled
 * simulations: the serial compiled engine pays one tape dispatch per
 * op for all lanes, the partition-parallel engine pays its two-barrier
 * rendezvous once per ensemble cycle, and the laned ISA tape pays one
 * op decode for all lanes — so the fixed cost per simulated cycle
 * drops by a factor of N, and the lane loop itself runs the SIMD
 * kernels from src/exec/.  The overhead-bound micros (ctr32/fifo1k)
 * therefore bound the gain from above and are the acceptance canary:
 * aggregate throughput must improve monotonically from lanes=1
 * through lanes>=8.  lanes=1 is the PR 4 batched-step baseline (same
 * engines, same step(n) path).
 *
 * lanes=7 is the padding datapoint: exec::paddedLaneCount rounds it
 * up to the 8-wide kernels, so the run does 8 lanes of compute with 7
 * visible — its aggregate throughput should land near 7/8 of the
 * exact 8-lane row, never at the 4-lane point (which would mean a
 * scalar tail crept back in).
 *
 * Rows land in BENCH_ensemble.json.  `--engine <name>` restricts to
 * one ensemble engine, `--lanes <n>` to one lane count.  isa.tape is
 * compiled to a Manticore program once per design and every lane
 * count shares that program, mirroring a regression farm's
 * compile-once / fan-out usage.
 */

#include <algorithm>
#include <cstdio>
#include <optional>

#include "bench/common.hh"
#include "compiler/compiler.hh"
#include "engine/registry.hh"
#include "exec/padding.hh"
#include "netlist/builder.hh"

using namespace manticore;

namespace {

/** One measurement on a FRESH engine so no run can trip the design's
 *  self-check horizon; returns ensemble kHz (rendezvous rate — every
 *  lane advances one cycle per ensemble cycle).  The caller
 *  interleaves lane counts round-robin and keeps the best of several
 *  rounds: the overhead-bound micros are sensitive to CPU-frequency
 *  drift, and interleaving exposes every lane count to the same
 *  windows instead of letting a slow spell bias one point. */
double
measureOnce(const std::function<std::unique_ptr<engine::Engine>()> &make,
            uint64_t horizon)
{
    auto eng = make();
    return bench::measureRateKhz(
        [&](uint64_t n) {
            return eng->step(n).status == engine::Status::Running;
        },
        horizon, 0.2, 2048);
}

struct DesignSpec
{
    const char *name;
    std::function<netlist::Netlist(uint64_t)> build;
    uint64_t horizon;
};

/** The smallest closed design: one 32-bit counter and a $finish —
 *  the lower bound on per-cycle work, i.e. the upper bound on the
 *  fixed-overhead fraction the ensemble amortises. */
netlist::Netlist
buildCounterMicro(uint64_t check_cycles)
{
    netlist::CircuitBuilder b("ctr32");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() ==
             b.lit(32, static_cast<uint64_t>(check_cycles)));
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> ensembled = {
        "netlist.compiled", "netlist.parallel", "isa.tape"};
    const std::string only = bench::engineFlag(argc, argv, "");
    if (!only.empty() &&
        std::find(ensembled.begin(), ensembled.end(), only) ==
            ensembled.end())
        MANTICORE_FATAL("--engine ", only, " has no ensemble mode; "
                        "this bench covers: ",
                        formatNameList(ensembled));
    const unsigned only_lanes = bench::lanesFlag(argc, argv, 0);

    // 7 rides the 8-wide kernels (the padded-vs-exact comparison).
    std::vector<unsigned> lane_counts = {1, 2, 4, 7, 8, 16};
    if (only_lanes != 0)
        lane_counts = {only_lanes};

    const std::vector<DesignSpec> specs = {
        {"ctr32", buildCounterMicro, 8'000'000},
        {"fifo1k",
         [](uint64_t h) { return designs::buildFifoMicro(1, h); },
         4'000'000},
        {"ram64k",
         [](uint64_t h) { return designs::buildRamMicro(64, h); },
         4'000'000},
        {"mm", designs::buildMm, bench::measureHorizon("mm")},
        {"jpeg", designs::buildJpeg, bench::measureHorizon("jpeg")},
        {"mc", designs::buildMc, bench::measureHorizon("mc")},
    };

    bench::printEnvironment(
        "Ensemble scaling: aggregate cycles/sec·lane vs lane count "
        "through engine::Engine (best of 3; lanes=1 equals the PR 4 "
        "batched-step baseline; lanes=7 runs padded on the 8-wide "
        "kernels)");
    std::printf("%8s  %18s  %6s  %6s  %14s  %14s  %10s\n", "design",
                "engine", "lanes", "padded", "ensemble kHz",
                "lane-kHz (agg)", "vs lanes=1");

    FILE *json = std::fopen("BENCH_ensemble.json", "w");
    if (json)
        std::fprintf(json, "{\n  \"experiment\": \"ensemble\",\n"
                           "  \"rows\": [\n");

    bool first = true;
    for (const DesignSpec &spec : specs) {
        netlist::Netlist nl = spec.build(spec.horizon * 8);

        // isa.tape: one netlist -> Manticore compile per design; every
        // lane count builds its ensemble from the same program
        // (engine::create over the netlist would recompile per
        // sample).
        compiler::CompileOptions isa_opts;
        std::optional<compiler::CompileResult> isa_cr;
        if (only.empty() || only == "isa.tape")
            isa_cr = compiler::compile(nl, isa_opts);

        for (const std::string &name : ensembled) {
            if (!only.empty() && name != only)
                continue;
            auto make = [&](unsigned lanes) {
                if (name == "isa.tape")
                    return engine::create(name, isa_cr->program,
                                          isa_opts.config, {}, lanes);
                engine::CreateOptions options;
                options.lanes = lanes;
                return engine::create(name, nl, options);
            };
            {
                // Warm-up run (discarded): brings the core out of
                // idle states before the lanes=1 baseline measures.
                auto warm = make(1);
                warm->step(std::min<uint64_t>(spec.horizon, 200'000));
            }
            // Round-robin over the lane counts, best of 4 rounds.
            std::vector<double> best(lane_counts.size(), 0.0);
            for (int round = 0; round < 4; ++round) {
                for (size_t i = 0; i < lane_counts.size(); ++i) {
                    unsigned lanes = lane_counts[i];
                    best[i] = std::max(
                        best[i],
                        measureOnce([&]() { return make(lanes); },
                                    spec.horizon));
                }
            }
            double base_lane_khz = 0.0;
            for (size_t i = 0; i < lane_counts.size(); ++i) {
                unsigned lanes = lane_counts[i];
                unsigned padded = exec::paddedLaneCount(lanes);
                double ens_khz = best[i];
                double lane_khz = ens_khz * lanes;
                if (lanes == 1)
                    base_lane_khz = lane_khz;
                // No lanes=1 baseline when --lanes pins another
                // width: report the gain as n/a, not a bogus 0.
                bool have_gain = base_lane_khz > 0;
                double gain =
                    have_gain ? lane_khz / base_lane_khz : 0.0;
                if (have_gain)
                    std::printf("%8s  %18s  %6u  %6u  %14.1f  %14.1f"
                                "  %9.2fx\n",
                                spec.name, name.c_str(), lanes, padded,
                                ens_khz, lane_khz, gain);
                else
                    std::printf("%8s  %18s  %6u  %6u  %14.1f  %14.1f"
                                "  %10s\n",
                                spec.name, name.c_str(), lanes, padded,
                                ens_khz, lane_khz, "n/a");
                if (json) {
                    std::fprintf(
                        json,
                        "%s    {\"design\": \"%s\", \"engine\": "
                        "\"%s\", \"lanes\": %u, "
                        "\"padded_lanes\": %u, "
                        "\"ensemble_khz\": %.2f, "
                        "\"lane_khz\": %.2f, "
                        "\"gain_vs_1_lane\": ",
                        first ? "" : ",\n", spec.name, name.c_str(),
                        lanes, padded, ens_khz, lane_khz);
                    if (have_gain)
                        std::fprintf(json, "%.2f}", gain);
                    else
                        std::fprintf(json, "null}");
                    first = false;
                }
            }
        }
    }

    if (json) {
        std::fprintf(json, "\n  ]\n}\n");
        std::fclose(json);
        std::printf("wrote BENCH_ensemble.json\n");
    }
    return 0;
}
