/**
 * @file
 * Fig. 8: the cost of going off-chip.  FIFO and RAM microbenchmarks
 * at 1/64/512 KiB on a 1x1 grid at 500 MHz, one load + one store per
 * Vcycle.  Reports machine cycles normalised to the 1 KiB (all
 * on-chip) configuration, the active/stalled split, and the cache hit
 * rate — all from the machine's hardware performance counters, as in
 * the paper.  (The paper runs 16Mi Vcycles; the shape stabilises
 * orders of magnitude earlier, so we run a scaled horizon.)
 */

#include "bench/common.hh"
#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "machine/machine.hh"
#include "runtime/host.hh"

using namespace manticore;

namespace {

struct Row
{
    double total_cycles;
    double active, stalled;
    double hit_rate;
};

Row
runMicro(bool fifo, unsigned kib, uint64_t vcycles)
{
    netlist::Netlist nl = fifo
                              ? designs::buildFifoMicro(kib, vcycles * 4)
                              : designs::buildRamMicro(kib, vcycles * 4);
    compiler::CompileOptions opts;
    opts.config.gridX = opts.config.gridY = 1;
    opts.config.clockKhz = 500'000.0; // §7.7 runs a 1x1 grid at 500 MHz
    compiler::CompileResult result = compiler::compile(nl, opts);
    machine::Machine m(result.program, opts.config);
    runtime::Host host(result.program, m.globalMemory());
    host.attach(engine::wrap(m));
    m.run(vcycles);
    const machine::PerfCounters &perf = m.perf();
    double accesses =
        static_cast<double>(perf.cacheHits + perf.cacheMisses);
    Row row;
    row.total_cycles = static_cast<double>(perf.totalCycles());
    row.active = static_cast<double>(perf.activeCycles);
    row.stalled = static_cast<double>(perf.stallCycles);
    row.hit_rate = accesses > 0
                       ? 100.0 * static_cast<double>(perf.cacheHits) /
                             accesses
                       : 100.0;
    return row;
}

} // namespace

int
main()
{
    bench::printEnvironment(
        "Fig. 8: global-stall cost — FIFO vs RAM at 1/64/512 KiB "
        "(1x1 grid, 500 MHz)");

    constexpr uint64_t kVcycles = 1 << 15; // scaled from the paper's 16Mi
    const unsigned sizes[] = {1, 64, 512};

    for (bool fifo : {true, false}) {
        std::printf("\n%s\n", fifo ? "FIFO (sequential access)"
                                   : "RAM (xorshift random access)");
        std::printf("%8s %12s %10s %10s %10s\n", "size", "norm-cycles",
                    "active%", "stalled%", "hit-rate%");
        double base = 0.0;
        for (unsigned kib : sizes) {
            Row row = runMicro(fifo, kib, kVcycles);
            if (kib == 1)
                base = row.total_cycles;
            std::printf("%6uKiB %12.2f %10.2f %10.2f %10.2f\n", kib,
                        row.total_cycles / base,
                        100.0 * row.active / row.total_cycles,
                        100.0 * row.stalled / row.total_cycles,
                        row.hit_rate);
        }
    }
    std::printf("\npaper: FIFO hit rates 99.99/96.87%%, RAM 512KiB "
                "drops to 62.49%% and\nruns ~2x slower; cache hits "
                "cost stalls even when they hit.\n");
    return 0;
}
