/**
 * @file
 * The PR 10 headline numbers: both new AOT variants against their
 * interpreted counterparts, appended to BENCH_aot_parallel.json.
 *
 * Partition columns: netlist.parallel.aot (each partition's tape
 * compiled into its own cached object, dispatched inside the
 * untouched two-barrier Vcycle) vs the interpreted netlist.parallel
 * on the large Fig. 6 builds.  On a 1-hardware-thread host these
 * columns are rendezvous/balance-bound — the compute phase the AOT
 * objects accelerate is a fraction of the Vcycle — so the partition
 * speedup there is a floor, not the story.
 *
 * Lane columns: the laned AOT codegen (netlist.aot with lanes=16 —
 * lane-width-templated bodies compiled -O3 with the probed SIMD
 * flags) vs the interpreted laned-SIMD tape (netlist.compiled,
 * lanes=16) on ctr32 and mm.  These measure pure per-lane compute
 * and must win on any host.
 *
 * Flags: --cache-dir <dir> overrides the object cache, --engine
 * <name> the partition baseline (default netlist.parallel),
 * --lanes <n> the ensemble width (default 16).
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hh"
#include "netlist/aot.hh"
#include "netlist/builder.hh"

using namespace manticore;

namespace {

/** Best-of-3 rate on FRESH engines (a run must never trip the
 *  design's self-check horizon), as ensemble kHz. */
double
measureBest(const std::function<std::unique_ptr<engine::Engine>()> &make,
            uint64_t horizon)
{
    double best = 0.0;
    for (int round = 0; round < 3; ++round) {
        auto eng = make();
        best = std::max(best,
                        bench::measureRateKhz(
                            [&](uint64_t n) {
                                return eng->step(n).status ==
                                       engine::Status::Running;
                            },
                            horizon, 0.2, 2048));
    }
    return best;
}

/** The smallest closed design — the overhead-bound lane-column
 *  micro, as in bench_ensemble.cc. */
netlist::Netlist
buildCounterMicro(uint64_t check_cycles)
{
    netlist::CircuitBuilder b("ctr32");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() ==
             b.lit(32, static_cast<uint64_t>(check_cycles)));
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printEnvironment(
        "AOT everywhere: per-partition compiled objects vs the "
        "interpreted netlist.parallel, and laned AOT ensembles vs "
        "the interpreted laned-SIMD tape");

    const netlist::AotToolchain &tc = netlist::aotToolchain();
    if (!tc.ok) {
        std::printf("skipped: %s\n", tc.message.c_str());
        return 0;
    }
    std::printf("toolchain: %s\n", tc.compiler.c_str());

    std::string cache_dir = bench::cacheDirFlag(argc, argv);
    std::string par_baseline =
        bench::engineFlag(argc, argv, "netlist.parallel");
    unsigned lanes = bench::lanesFlag(argc, argv, 16);
    {
        netlist::EvalOptions resolve;
        resolve.aotCacheDir = cache_dir;
        std::printf("cache dir: %s\n\n",
                    netlist::aotResolveCacheDir(resolve).c_str());
    }

    FILE *json = std::fopen("BENCH_aot_parallel.json", "w");
    if (json)
        std::fprintf(json, "{\n  \"experiment\": \"aot_parallel\",\n"
                           "  \"partition_rows\": [\n");

    // ---- partition columns -----------------------------------------
    std::printf("per-partition AOT vs %s (large builds):\n",
                par_baseline.c_str());
    std::printf("%8s  %6s  %14s  %14s  %9s\n", "bench", "parts",
                "interp kHz", "aot kHz", "speedup");
    std::vector<double> part_speedups;
    bool first = true;
    for (const designs::Benchmark &bm : designs::allBenchmarksLarge()) {
        if (bm.name != "mm" && bm.name != "rv32r" &&
            bm.name != "jpeg" && bm.name != "noc")
            continue;
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon * 8);

        engine::CreateOptions interp;
        engine::CreateOptions aot;
        aot.eval.aotCacheDir = cache_dir;
        auto make_interp = [&]() {
            return engine::create(par_baseline, nl, interp);
        };
        auto make_aot = [&]() {
            return engine::create("netlist.parallel.aot", nl, aot);
        };

        // First AOT construction pays any cold compile up front so
        // the measurement loop sees only warm startups; also grab
        // the partition count for the row.
        uint64_t parts = 0;
        {
            auto warm = make_aot();
            warm->step(2048);
            for (const engine::Stat &s : warm->stats())
                if (s.name == "processes")
                    parts = s.value;
        }

        double interp_khz = measureBest(make_interp, horizon);
        double aot_khz = measureBest(make_aot, horizon);
        double speedup = interp_khz > 0 ? aot_khz / interp_khz : 0.0;
        part_speedups.push_back(speedup);
        std::printf("%8s  %6llu  %14.1f  %14.1f  %8.2fx\n",
                    bm.name.c_str(),
                    static_cast<unsigned long long>(parts), interp_khz,
                    aot_khz, speedup);
        if (json) {
            std::fprintf(
                json,
                "%s    {\"design\": \"%s\", \"partitions\": %llu, "
                "\"interpreted_khz\": %.2f, \"aot_khz\": %.2f, "
                "\"speedup\": %.2f}",
                first ? "" : ",\n", bm.name.c_str(),
                static_cast<unsigned long long>(parts), interp_khz,
                aot_khz, speedup);
            first = false;
        }
    }
    double part_gm = bench::geomean(part_speedups);
    std::printf("geomean partition speedup: %.2fx\n\n", part_gm);

    // ---- lane columns ----------------------------------------------
    struct LaneSpec
    {
        const char *name;
        std::function<netlist::Netlist(uint64_t)> build;
        uint64_t horizon;
    };
    const std::vector<LaneSpec> lane_specs = {
        {"ctr32", buildCounterMicro, 8'000'000},
        {"mm", designs::buildMm, bench::measureHorizon("mm")},
    };

    if (json)
        std::fprintf(json, "\n  ],\n  \"lane_rows\": [\n");
    std::printf("laned AOT (netlist.aot) vs interpreted SIMD tape "
                "(netlist.compiled) at %u lanes:\n",
                lanes);
    std::printf("%8s  %6s  %16s  %16s  %9s\n", "design", "lanes",
                "interp lane-kHz", "aot lane-kHz", "speedup");
    std::vector<double> lane_speedups;
    first = true;
    for (const LaneSpec &spec : lane_specs) {
        netlist::Netlist nl = spec.build(spec.horizon * 8);

        engine::CreateOptions interp;
        interp.lanes = lanes;
        engine::CreateOptions aot;
        aot.lanes = lanes;
        aot.eval.aotCacheDir = cache_dir;
        auto make_interp = [&]() {
            return engine::create("netlist.compiled", nl, interp);
        };
        auto make_aot = [&]() {
            return engine::create("netlist.aot", nl, aot);
        };
        {
            auto warm = make_aot(); // pay the cold compile up front
            warm->step(2048);
        }

        double interp_khz = measureBest(make_interp, spec.horizon);
        double aot_khz = measureBest(make_aot, spec.horizon);
        double speedup = interp_khz > 0 ? aot_khz / interp_khz : 0.0;
        lane_speedups.push_back(speedup);
        std::printf("%8s  %6u  %16.1f  %16.1f  %8.2fx\n", spec.name,
                    lanes, interp_khz * lanes, aot_khz * lanes,
                    speedup);
        if (json) {
            std::fprintf(
                json,
                "%s    {\"design\": \"%s\", \"lanes\": %u, "
                "\"interpreted_lane_khz\": %.2f, "
                "\"aot_lane_khz\": %.2f, \"speedup\": %.2f}",
                first ? "" : ",\n", spec.name, lanes,
                interp_khz * lanes, aot_khz * lanes, speedup);
            first = false;
        }
    }
    double lane_gm = bench::geomean(lane_speedups);
    std::printf("geomean lane speedup: %.2fx\n", lane_gm);

    if (json) {
        std::fprintf(json,
                     "\n  ],\n  \"partition_baseline\": \"%s\",\n"
                     "  \"geomean_partition_speedup\": %.2f,\n"
                     "  \"geomean_lane_speedup\": %.2f\n}\n",
                     par_baseline.c_str(), part_gm, lane_gm);
        std::fclose(json);
        std::printf("wrote BENCH_aot_parallel.json\n");
    }
    return 0;
}
