/**
 * @file
 * Fig. 10: savings from custom function instructions.  Per benchmark:
 * VCPL normalised to the no-CFU build, the straggler's breakdown into
 * NOP/other/CUST slots, and the reduction in total non-NOP
 * instructions over all cores.
 */

#include "bench/common.hh"
#include "compiler/compiler.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Fig. 10: custom-instruction savings (15x15 grid)");

    std::printf("%8s %10s %12s %10s %10s %12s\n", "bench", "norm-VCPL",
                "instr-red%", "cust-slot%", "nop-slot%", "functions");

    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        netlist::Netlist nl = bm.build(1u << 20);
        compiler::CompileOptions with;
        with.config.gridX = with.config.gridY = 15;
        compiler::CompileOptions without = with;
        without.enableCustomFunctions = false;

        compiler::CompileResult rw = compiler::compile(nl, with);
        compiler::CompileResult ro = compiler::compile(nl, without);

        double norm = static_cast<double>(rw.program.vcpl) /
                      static_cast<double>(ro.program.vcpl);
        double instr_red =
            100.0 *
            (static_cast<double>(ro.schedule.totalInstructions) -
             static_cast<double>(rw.schedule.totalInstructions)) /
            static_cast<double>(ro.schedule.totalInstructions);
        double cust_pct =
            100.0 * rw.schedule.stragglerCust / rw.program.vcpl;
        double nop_pct =
            100.0 * rw.schedule.stragglerNop / rw.program.vcpl;
        std::printf("%8s %10.3f %12.1f %10.1f %10.1f %12zu\n",
                    bm.name.c_str(), norm, instr_red, cust_pct, nop_pct,
                    rw.cfu.distinctFunctions);
    }
    std::printf("\npaper: 2.9-17.8%% fewer non-NOP instructions, but "
                "end-to-end VCPL\nimproves by <10%% (the straggler "
                "rarely shortens).\n");
    return 0;
}
