/**
 * @file
 * Multi-tenant service overhead: aggregate simulated throughput and
 * poll latency as the tenant count grows 1 -> 64 over ONE fixed
 * worker pool, against a dedicated single-engine serial baseline.
 *
 * The claim under test: time-slicing thousands-of-cycles quanta over
 * a condvar-parked pool costs almost nothing — aggregate throughput
 * at 32 tenants stays >= 70% of the serial rate (it is typically
 * >95%: the quantum is thousands of engine cycles per lock hop), and
 * polling a session is wait-free against the quantum (published
 * state, never the engine), so p99 poll latency stays in microseconds
 * even while every worker is saturated.
 *
 * Rows land in BENCH_service.json.  `--engine <name>` selects the
 * tenant engine (default netlist.compiled).
 */

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/common.hh"
#include "netlist/builder.hh"
#include "service/session.hh"

using namespace manticore;
using clock_type = std::chrono::steady_clock;

namespace {

/** Free-running counter that never finishes inside a bench run. */
netlist::Netlist
counterDesign()
{
    netlist::CircuitBuilder b("ctr32");
    auto c = b.reg("c", 32);
    b.next(c, c.read() + b.lit(32, 1));
    b.finish(c.read() == b.lit(32, 0x7fffffff));
    return b.build();
}

double
percentileUs(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(samples.size() - 1));
    return samples[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string engine =
        bench::engineFlag(argc, argv, "netlist.compiled");
    bench::printEnvironment("service: multi-tenant scheduling "
                            "overhead (manticored's scheduler)");

    // Serial baseline: one dedicated engine, no scheduler.
    double serial_khz;
    {
        auto eng = engine::create(engine, counterDesign());
        serial_khz = bench::measureRateKhz(
            [&](uint64_t chunk) {
                return eng->step(chunk).status ==
                       engine::Status::Running;
            },
            1u << 30, 0.4);
    }
    std::printf("serial baseline (%s, dedicated): %.0f kHz\n\n",
                engine.c_str(), serial_khz);

    // Fixed total work, split across N tenants of one scheduler.
    const uint64_t total_cycles = std::max<uint64_t>(
        1u << 20, static_cast<uint64_t>(serial_khz * 1000 * 0.4));

    FILE *json = std::fopen("BENCH_service.json", "w");
    if (json)
        std::fprintf(json,
                     "{\n  \"experiment\": \"service\",\n"
                     "  \"engine\": \"%s\",\n"
                     "  \"serial_khz\": %.1f,\n"
                     "  \"rows\": [",
                     engine.c_str(), serial_khz);

    std::printf("%8s %12s %10s %12s %12s\n", "tenants", "agg kHz",
                "vs serial", "poll p50 us", "poll p99 us");
    bool first = true;
    for (unsigned tenants : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        service::Scheduler sched{service::SchedulerOptions{}};
        std::vector<service::SessionHandle> handles;
        std::string error;
        uint64_t per_tenant = total_cycles / tenants;
        for (unsigned t = 0; t < tenants; ++t) {
            auto h = service::SessionHandle::create(
                sched, engine, counterDesign(), {}, &error);
            if (!h.valid())
                MANTICORE_FATAL("tenant ", t, ": ", error);
            if (!h.wait())
                MANTICORE_FATAL("tenant ", t, " never became ready");
            handles.push_back(std::move(h));
        }

        // Submit everything, then sample poll latency from a side
        // thread while the pool drains the queues.
        auto start = clock_type::now();
        for (auto &h : handles)
            if (!h.submitRun(per_tenant, &error))
                MANTICORE_FATAL("submit: ", error);

        std::vector<double> poll_us;
        std::atomic<bool> sampling{true};
        std::thread sampler([&] {
            size_t i = 0;
            while (sampling.load(std::memory_order_relaxed)) {
                auto t0 = clock_type::now();
                handles[i++ % handles.size()].poll();
                poll_us.push_back(
                    std::chrono::duration<double, std::micro>(
                        clock_type::now() - t0)
                        .count());
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
        });
        for (auto &h : handles)
            h.wait();
        double seconds =
            std::chrono::duration<double>(clock_type::now() - start)
                .count();
        sampling.store(false);
        sampler.join();

        double agg_khz = static_cast<double>(per_tenant) * tenants /
                         seconds / 1000.0;
        double rel = serial_khz > 0 ? agg_khz / serial_khz : 0.0;
        double p50 = percentileUs(poll_us, 0.50);
        double p99 = percentileUs(poll_us, 0.99);
        std::printf("%8u %12.0f %9.1f%% %12.1f %12.1f\n", tenants,
                    agg_khz, 100.0 * rel, p50, p99);
        if (json) {
            std::fprintf(json,
                         "%s\n    {\"tenants\": %u, "
                         "\"agg_khz\": %.1f, \"relative\": %.3f, "
                         "\"poll_p50_us\": %.1f, "
                         "\"poll_p99_us\": %.1f, "
                         "\"poll_samples\": %zu}",
                         first ? "" : ",", tenants, agg_khz, rel, p50,
                         p99, poll_us.size());
            first = false;
        }
    }
    if (json) {
        std::fprintf(json, "\n  ]\n}\n");
        std::fclose(json);
        std::printf("wrote BENCH_service.json\n");
    }
    return 0;
}
