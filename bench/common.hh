/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark harnesses:
 * environment banner (the analogue of the paper's Table 2), wall-clock
 * rate measurement with adaptive chunking, and small formatting
 * utilities.  Every harness prints the same rows/series the paper
 * reports; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef MANTICORE_BENCH_COMMON_HH
#define MANTICORE_BENCH_COMMON_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "designs/designs.hh"
#include "engine/registry.hh"
#include "support/logging.hh"
#include "support/namelist.hh"

namespace manticore::bench {

/** Parse a `--engine <name>` / `--engine=<name>` flag so every bench
 *  can select an execution engine by registry name (engine::list());
 *  returns `fallback` when the flag is absent and fatals — listing
 *  the registry — on unknown names. */
inline std::string
engineFlag(int argc, char **argv, const std::string &fallback)
{
    std::string chosen;
    bool given = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--engine") == 0) {
            given = true;
            chosen = i + 1 < argc ? argv[i + 1] : "";
        } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
            given = true;
            chosen = argv[i] + 9;
        }
    }
    if (!given)
        return fallback; // flag absent: the bench's default stands
    if (chosen.empty())
        MANTICORE_FATAL("--engine needs a value (registered engines: ",
                        formatNameList(engine::names()), ")");
    const engine::EngineInfo *info = engine::find(chosen);
    if (!info)
        MANTICORE_FATAL("--engine ", chosen, ": no such engine "
                        "(registered engines: ",
                        formatNameList(engine::names()), ")");
    if (!info->available)
        MANTICORE_FATAL("--engine ", chosen,
                        ": not available on this host (",
                        info->availabilityNote, ")");
    return chosen;
}

/** Parse a `--cache-dir <dir>` / `--cache-dir=<dir>` flag for the
 *  benches that exercise the AOT object cache (bench_aot); returns
 *  `fallback` when absent so the default resolution (see
 *  netlist/aot.hh) stands. */
inline std::string
cacheDirFlag(int argc, char **argv, const std::string &fallback = "")
{
    std::string chosen = fallback;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache-dir") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0')
                MANTICORE_FATAL("--cache-dir needs a directory");
            chosen = argv[i + 1];
        } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
            chosen = argv[i] + 12;
            if (chosen.empty())
                MANTICORE_FATAL("--cache-dir needs a directory");
        }
    }
    return chosen;
}

/** Parse a `--lanes <n>` / `--lanes=<n>` flag for the ensemble
 *  benches.  Returns `fallback` when the flag is absent (benches use
 *  0 as "sweep the built-in lane counts"); 0 or junk values are a
 *  fatal(). */
inline unsigned
lanesFlag(int argc, char **argv, unsigned fallback = 0)
{
    std::string chosen;
    bool given = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--lanes") == 0) {
            given = true;
            chosen = i + 1 < argc ? argv[i + 1] : "";
        } else if (std::strncmp(argv[i], "--lanes=", 8) == 0) {
            given = true;
            chosen = argv[i] + 8;
        }
    }
    if (!given)
        return fallback;
    char *end = nullptr;
    unsigned long lanes =
        chosen.empty() ? 0 : std::strtoul(chosen.c_str(), &end, 10);
    if (chosen.empty() || (end && *end != '\0') || lanes == 0 ||
        lanes > 4096)
        MANTICORE_FATAL("--lanes needs a positive lane count, got '",
                        chosen, "'");
    return static_cast<unsigned>(lanes);
}

/** Print the host environment (our stand-in for Table 2). */
inline void
printEnvironment(const char *experiment)
{
    std::printf("=============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("host: %u hardware thread(s) "
                "(paper hosts: i7-9700K 8c / Xeon 8272CL 32c / "
                "EPYC 7V73X 120c)\n",
                std::thread::hardware_concurrency());
    std::printf("=============================================================\n");
}

/** Measure a stepped simulation's rate in kHz.  step(chunk) must
 *  advance `chunk` cycles and return false to stop early; max_cycles
 *  caps the total so self-checking drivers never fire mid-run. */
inline double
measureRateKhz(const std::function<bool(uint64_t)> &step,
               uint64_t max_cycles, double seconds_budget = 0.2,
               uint64_t chunk = 2048)
{
    using clock = std::chrono::steady_clock;
    uint64_t done = 0;
    auto start = clock::now();
    double elapsed = 0.0;
    while (done + chunk <= max_cycles) {
        if (!step(chunk))
            break;
        done += chunk;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
        if (elapsed >= seconds_budget)
            break;
    }
    if (done == 0 || elapsed <= 0.0)
        return 0.0;
    return static_cast<double>(done) / elapsed / 1000.0;
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Per-design cycle horizons large enough for steady-state rate
 *  measurement but cheap enough for golden-model generation. */
inline uint64_t
measureHorizon(const std::string &name)
{
    if (name == "jpeg")
        return 4'000'000;
    if (name == "blur" || name == "bc")
        return 1'000'000;
    return 600'000;
}

} // namespace manticore::bench

#endif // MANTICORE_BENCH_COMMON_HH
