/**
 * @file
 * Table 8 + Fig. 13: compilation statistics.  Per benchmark: the
 * split graph's |V| and |E| (maximal independent processes and their
 * communication edges), total Manticore compile time, the per-phase
 * breakdown of Fig. 13 (lower/opt/parallelise/custom-functions/
 * schedule/other), and the baseline simulator's construction time as
 * the Verilator-compile analogue.
 */

#include "baseline/baseline.hh"
#include "bench/common.hh"
#include "compiler/compiler.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Table 8 / Fig. 13: compile time and phase breakdown "
        "(15x15 grid)");

    std::printf("%8s %8s %8s %10s %10s | %6s %6s %6s %6s %6s %6s\n",
                "bench", "|V|", "|E|", "mant(s)", "base(s)", "low%",
                "opt%", "prl%", "cf%", "sch%", "otr%");

    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        netlist::Netlist nl = bm.build(1u << 20);

        auto t0 = std::chrono::steady_clock::now();
        baseline::CompiledDesign base(nl);
        double base_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

        compiler::CompileOptions opts;
        opts.config.gridX = opts.config.gridY = 15;
        compiler::CompileResult r = compiler::compile(nl, opts);

        auto pct = [&](const char *phase) {
            auto it = r.phaseSeconds.find(phase);
            double sec = it == r.phaseSeconds.end() ? 0.0 : it->second;
            return 100.0 * sec / r.totalSeconds;
        };
        std::printf(
            "%8s %8zu %8zu %10.3f %10.3f | %6.1f %6.1f %6.1f %6.1f "
            "%6.1f %6.1f\n",
            bm.name.c_str(), r.partition.splitProcesses,
            r.partition.splitEdges, r.totalSeconds, base_sec,
            pct("lower"), pct("opt"), pct("prl"), pct("cf"),
            pct("sch"), pct("otr"));
    }
    std::printf("\npaper: Manticore compiles in seconds-to-minutes "
                "(16m max on vta), dominated\nby parallelisation; "
                "Verilator compiles in seconds-to-minutes too but "
                "faster.\n");
    return 0;
}
