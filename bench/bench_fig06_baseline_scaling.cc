/**
 * @file
 * Fig. 6 (and appendix Figs. 11/12): self-relative parallel scaling of
 * the baseline software simulator (our Verilator substitute) across
 * the nine benchmarks.  The paper runs this on three hosts; we have
 * one, so a single table is produced.
 */

#include <algorithm>

#include "baseline/baseline.hh"
#include "bench/common.hh"
#include "netlist/evaluator.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Fig. 6 / Figs. 11-12: baseline simulator parallel scaling "
        "(self-relative speedup)");

    unsigned max_threads =
        std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
    std::printf("%8s", "bench");
    for (netlist::EvalMode mode :
         {netlist::EvalMode::Reference, netlist::EvalMode::Compiled})
        std::printf("  %-9s", netlist::evalModeName(mode));
    for (unsigned t = 1; t <= max_threads; ++t)
        std::printf("  thr%-5u", t);
    std::printf("\n");

    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);
        baseline::CompiledDesign design(nl);

        std::printf("%8s", bm.name.c_str());

        // Netlist-evaluator baselines (the rates every engine is
        // measured against): reference graph walker vs compiled tape.
        for (netlist::EvalMode mode :
             {netlist::EvalMode::Reference, netlist::EvalMode::Compiled}) {
            auto eval = netlist::makeEvaluator(nl, mode);
            double khz = bench::measureRateKhz(
                [&](uint64_t chunk) {
                    return eval->run(chunk) == netlist::SimStatus::Ok;
                },
                horizon - 8, 0.1,
                mode == netlist::EvalMode::Reference ? 256 : 2048);
            std::printf("  %-9.1f", khz);
        }
        double serial_khz = 0.0;
        for (unsigned t = 1; t <= max_threads; ++t) {
            double khz;
            if (t == 1) {
                baseline::SerialSimulator sim(design);
                sim.state().collectDisplays = false;
                khz = bench::measureRateKhz(
                    [&](uint64_t chunk) {
                        return sim.run(chunk) ==
                               baseline::SimStatus::Ok;
                    },
                    horizon - 8);
                serial_khz = khz;
            } else {
                baseline::ThreadedSimulator sim(design, t);
                sim.state().collectDisplays = false;
                khz = bench::measureRateKhz(
                    [&](uint64_t chunk) {
                        return sim.run(chunk) ==
                               baseline::SimStatus::Ok;
                    },
                    horizon - 8);
            }
            std::printf("  %-8.2f", serial_khz > 0 ? khz / serial_khz
                                                   : 0.0);
        }
        std::printf("  (serial %.1f kHz)\n", serial_khz);
    }
    std::printf("\nnote: with one hardware thread the speedup columns "
                "expose pure\nsynchronisation overhead, the paper's "
                "fine-granularity regime (its multi-core\nhosts top "
                "out at 3.9-4.6x on the largest designs).\n");
    return 0;
}
