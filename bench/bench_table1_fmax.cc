/**
 * @file
 * Table 1: clock frequency (MHz) achieved on the U200 for various
 * Manticore grid sizes under automatic and guided floorplanning,
 * regenerated from the analytic physical-design model (DESIGN.md §1
 * documents the substitution for Vivado place-and-route).
 */

#include <cstdio>

#include "bench/common.hh"
#include "machine/fpga_model.hh"

using namespace manticore;

int
main()
{
    bench::printEnvironment(
        "Table 1: U200 clock frequency vs grid size "
        "(auto vs guided floorplanning)");

    machine::FpgaModel model;
    const unsigned grids[] = {8, 10, 12, 15, 16};

    std::printf("%-8s", "Grid");
    for (unsigned g : grids)
        std::printf("%6ux%-4u", g, g);
    std::printf("\n%-8s", "Auto");
    for (unsigned g : grids)
        std::printf("%7.0f   ", model.fmaxMhz(g, g, false));
    std::printf("\n%-8s", "Guided");
    for (unsigned g : grids)
        std::printf("%7.0f   ", model.fmaxMhz(g, g, true));
    std::printf("\n\npaper:  auto   500 485 480 395 180\n");
    std::printf("        guided  -   -  500 475 450\n");
    std::printf("URAM budget caps the grid at %u cores "
                "(paper: 398).\n",
                model.maxCores());
    return 0;
}
