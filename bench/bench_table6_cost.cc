/**
 * @file
 * Tables 5 and 6: the cloud cost analysis.  Uses the paper's Azure
 * instance prices (Table 5) and this build's measured/derived
 * simulation rates to recompute hours and dollars for 1- and 10-
 * billion-cycle runs.  Rate sources: baseline serial and MT rates are
 * measured on this host; the Manticore rate is 475 MHz / VCPL at
 * 15x15.
 */

#include <algorithm>

#include "baseline/baseline.hh"
#include "bench/common.hh"
#include "compiler/compiler.hh"

using namespace manticore;

namespace {

struct Instance
{
    const char *name;
    double dollars_per_hour;
};

// Table 5 of the paper.
constexpr Instance kSerialInst = {"D2v3", 0.115};
constexpr Instance kMtInst = {"D16v4", 0.92};
constexpr Instance kHbInst = {"HB120rs", 4.68};
constexpr Instance kNpInst = {"NP10s(U250)", 2.145};

void
printRow(const char *bench, const Instance &inst, double khz,
         double billions)
{
    if (khz <= 0)
        return;
    double hours = billions * 1e9 / (khz * 1000.0) / 3600.0;
    double billed = std::ceil(hours);
    std::printf("  %-14s %8.2f h %8.2f $%s\n", inst.name, hours,
                billed * inst.dollars_per_hour,
                hours > 8 ? "  (exceeds one workday)" : "");
    (void)bench;
}

} // namespace

int
main()
{
    bench::printEnvironment(
        "Tables 5-6: Azure cost of 1B / 10B-cycle simulations "
        "(paper's instance prices)");

    std::printf("instances (Table 5): D2v3 $0.115/h serial, "
                "D16v4 $0.92/h MT,\n  HB120rs $4.68/h MT, "
                "NP10s (FPGA+10 vCPU) $2.145/h Manticore\n");

    unsigned mt_threads =
        std::min(4u, std::max(2u, std::thread::hardware_concurrency()));

    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);
        baseline::CompiledDesign design(nl);

        baseline::SerialSimulator serial(design);
        serial.state().collectDisplays = false;
        double s_khz = bench::measureRateKhz(
            [&](uint64_t chunk) {
                return serial.run(chunk) == baseline::SimStatus::Ok;
            },
            horizon - 8, 0.1);
        baseline::ThreadedSimulator mt(design, mt_threads);
        mt.state().collectDisplays = false;
        double mt_khz = bench::measureRateKhz(
            [&](uint64_t chunk) {
                return mt.run(chunk) == baseline::SimStatus::Ok;
            },
            horizon - 8, 0.1);

        compiler::CompileOptions opts;
        opts.config.gridX = opts.config.gridY = 15;
        compiler::CompileResult result = compiler::compile(nl, opts);
        double mant_khz = result.simulationRateKhz(475'000.0);

        for (double billions : {1.0, 10.0}) {
            std::printf("%s, %.0fB cycles:\n", bm.name.c_str(),
                        billions);
            printRow(bm.name.c_str(), kSerialInst, s_khz, billions);
            printRow(bm.name.c_str(), kMtInst, mt_khz, billions);
            printRow(bm.name.c_str(), kHbInst, mt_khz, billions);
            printRow(bm.name.c_str(), kNpInst, mant_khz, billions);
        }
    }
    std::printf("\npaper: for 10B-cycle runs Manticore finishes "
                "everything within a long\nworkday (max 13 h) while "
                "serial simulation can take most of a week;\ncost "
                "differences are secondary to turnaround.\n");
    return 0;
}
