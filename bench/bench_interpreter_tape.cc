/**
 * @file
 * Reference vs flat-tape functional ISA interpretation rate on the
 * compiled Fig. 6 benchmark programs.  The reference Interpreter walks
 * the scheduled Instruction structs — including every NOP hazard slot
 * the scheduler inserted — and re-decodes operands each time; the
 * TapeInterpreter runs the same program as a pre-decoded, NOP-elided,
 * run-batched op tape over one flat register array.  The measured ratio
 * is the cost of that re-decoding + padding, and the row is appended
 * to BENCH_interpreter_tape.json so the perf trajectory is tracked.
 */

#include <cstdio>

#include "bench/common.hh"
#include "compiler/compiler.hh"
#include "engine/adapters.hh"
#include "isa/tape_interpreter.hh"
#include "runtime/host.hh"

using namespace manticore;

namespace {

double
measure(isa::InterpreterBase &interp, runtime::Host &host,
        uint64_t horizon, uint64_t chunk)
{
    host.onDisplay = nullptr;
    return bench::measureRateKhz(
        [&](uint64_t n) {
            // stepVcycle per cycle on BOTH engines so the measured
            // ratio isolates the PR-3 dispatch/pre-decode win; the
            // batched run(n) path is measured separately by
            // bench_engine_batch.
            for (uint64_t i = 0; i < n; ++i)
                if (interp.stepVcycle() != isa::RunStatus::Running)
                    return false;
            return true;
        },
        horizon - 8, 0.2, chunk);
}

} // namespace

int
main()
{
    bench::printEnvironment(
        "Flat-tape vs reference functional ISA interpreter "
        "(compiled Fig. 6 designs, 6x6 grid)");

    std::printf("%8s  %10s  %10s  %9s  %9s  %9s  %7s\n", "bench",
                "ref kHz", "tape kHz", "speedup", "body ops", "tape ops",
                "runs");

    FILE *json = std::fopen("BENCH_interpreter_tape.json", "w");
    if (json)
        std::fprintf(json,
                     "{\n  \"experiment\": \"interpreter_tape\",\n"
                     "  \"rows\": [\n");

    std::vector<double> speedups;
    bool first = true;
    for (const designs::Benchmark &bm : designs::allBenchmarks()) {
        uint64_t horizon = bench::measureHorizon(bm.name);
        netlist::Netlist nl = bm.build(horizon);

        compiler::CompileOptions opts;
        opts.config.gridX = opts.config.gridY = 6;
        compiler::CompileResult cr = compiler::compile(nl, opts);
        size_t body_slots = 0;
        for (const auto &proc : cr.program.processes)
            body_slots += proc.body.size();

        isa::Interpreter ref(cr.program, opts.config);
        runtime::Host ref_host(cr.program, ref.globalMemory());
        ref_host.attach(engine::wrap(ref));
        double ref_khz = measure(ref, ref_host, horizon, 64);

        isa::TapeInterpreter tape(cr.program, opts.config);
        runtime::Host tape_host(cr.program, tape.globalMemory());
        tape_host.attach(engine::wrap(tape));
        double tape_khz = measure(tape, tape_host, horizon, 256);

        double speedup = ref_khz > 0 ? tape_khz / ref_khz : 0.0;
        speedups.push_back(speedup);
        std::printf("%8s  %10.1f  %10.1f  %8.2fx  %9zu  %9zu  %7zu\n",
                    bm.name.c_str(), ref_khz, tape_khz, speedup,
                    body_slots, tape.tapeLength(), tape.dispatches());
        if (json) {
            std::fprintf(json,
                         "%s    {\"design\": \"%s\", "
                         "\"reference_khz\": %.2f, "
                         "\"tape_khz\": %.2f, "
                         "\"speedup\": %.2f, "
                         "\"body_slots\": %zu, "
                         "\"tape_ops\": %zu, "
                         "\"nops_elided\": %zu, "
                         "\"dispatch_runs\": %zu}",
                         first ? "" : ",\n", bm.name.c_str(), ref_khz,
                         tape_khz, speedup, body_slots,
                         tape.tapeLength(), tape.nopsElided(),
                         tape.dispatches());
            first = false;
        }
    }

    double gm = bench::geomean(speedups);
    std::printf("\ngeomean speedup: %.2fx\n", gm);
    if (json) {
        std::fprintf(json,
                     "\n  ],\n  \"geomean_speedup\": %.2f\n}\n", gm);
        std::fclose(json);
        std::printf("wrote BENCH_interpreter_tape.json\n");
    }
    return 0;
}
